//! The mergeable metrics registry: per-link per-class counters, gauges,
//! and delay/backlog histograms behind the [`Probe`] gate.
//!
//! [`MetricsRegistry`] is the accumulation substrate the ROADMAP's sharded
//! farm needs: every field merges **losslessly** — integer counters and
//! log-bucketed histogram bins sum exactly, gauges sum and their
//! high-water marks take the max — so N per-shard registries merged in any
//! order are bit-identical to one registry that observed the concatenated
//! streams (each shard's gauges start and end at zero, which lossless
//! replays guarantee: every enqueued packet eventually departs).
//!
//! The registry is itself a [`Probe`], so it attaches to any
//! `qsim::Session`/`netsim::Session` via `.probe(&mut registry)`; the
//! sessions also expose it first-class through their `run_metered`
//! entry points. Snapshots serialize to deterministic JSON
//! ([`MetricsRegistry::to_json`]) and to the Prometheus text exposition
//! format ([`MetricsRegistry::to_prometheus`], checked by
//! [`validate_prometheus`]).

use simcore::Time;
use stats::Histogram;

use crate::probe::{PacketId, Probe};

/// Counters, gauges, and histograms for one (link, class) channel.
///
/// `departures` counts end-of-life departures only (so per-class packet
/// conservation `arrivals = departures + drops` holds network-wide), while
/// `hop_departures` counts every transmission completed by this link —
/// the count behind `delay_hist` and `wait_ticks_sum`.
#[derive(Debug, Clone, Default)]
pub struct ChannelMetrics {
    /// Packets offered to this link.
    pub arrivals: u64,
    /// Packets admitted into the class queue.
    pub enqueues: u64,
    /// End-of-life departures (the packet left the network here).
    pub departures: u64,
    /// All departures at this link, including mid-path hops.
    pub hop_departures: u64,
    /// Packets dropped by a finite buffer.
    pub drops: u64,
    /// Scheduler decisions won by this class at this link.
    pub decisions_won: u64,
    /// Sum of hop-local queueing waits (ticks) over `hop_departures`.
    pub wait_ticks_sum: u64,
    /// Bytes delivered (end-of-life departures only).
    pub bytes_delivered: u64,
    /// Sum of post-enqueue backlog-byte gauge readings over `enqueues`.
    pub backlog_bytes_sum: u64,
    /// Current queued-packet gauge at this link.
    pub depth: i64,
    /// High-water mark of the queued-packet gauge.
    pub depth_high_water: i64,
    /// Current queued-byte gauge at this link.
    pub backlog_bytes: i64,
    /// High-water mark of the queued-byte gauge.
    pub backlog_high_water: i64,
    /// Log-bucketed hop-local queueing delays (ticks), one sample per
    /// hop departure.
    pub delay_hist: Histogram,
    /// Log-bucketed post-enqueue backlog (bytes), one sample per enqueue.
    pub backlog_hist: Histogram,
}

impl ChannelMetrics {
    /// Folds `other` into `self` (exact lossless merge).
    fn merge(&mut self, other: &ChannelMetrics) {
        self.arrivals += other.arrivals;
        self.enqueues += other.enqueues;
        self.departures += other.departures;
        self.hop_departures += other.hop_departures;
        self.drops += other.drops;
        self.decisions_won += other.decisions_won;
        self.wait_ticks_sum += other.wait_ticks_sum;
        self.bytes_delivered += other.bytes_delivered;
        self.backlog_bytes_sum += other.backlog_bytes_sum;
        self.depth += other.depth;
        self.depth_high_water = self.depth_high_water.max(other.depth_high_water);
        self.backlog_bytes += other.backlog_bytes;
        self.backlog_high_water = self.backlog_high_water.max(other.backlog_high_water);
        self.delay_hist.merge(&other.delay_hist);
        self.backlog_hist.merge(&other.backlog_hist);
    }
}

/// One link's channels plus its decision tally.
#[derive(Debug, Clone, Default)]
pub struct LinkMetrics {
    /// Per-class channels at this link (index = class).
    pub classes: Vec<ChannelMetrics>,
}

impl LinkMetrics {
    /// Scheduler decisions taken at this link — exactly one class wins
    /// each decision, so this is the sum of the per-class tallies (derived
    /// rather than counted so the hot path touches one counter fewer).
    pub fn decisions(&self) -> u64 {
        self.classes.iter().map(|c| c.decisions_won).sum()
    }
}

/// Network-wide per-class gauges (summed over links), with the high-water
/// marks of the *aggregate* gauge — which per-link high-water marks cannot
/// reconstruct (the links' peaks need not coincide in time).
#[derive(Debug, Clone, Default)]
pub struct ClassGauges {
    /// Queued packets anywhere in the network.
    pub depth: i64,
    /// High-water mark of the network-wide depth gauge.
    pub depth_high_water: i64,
    /// Queued bytes anywhere in the network.
    pub backlog_bytes: i64,
    /// High-water mark of the network-wide backlog gauge.
    pub backlog_high_water: i64,
}

impl ClassGauges {
    fn merge(&mut self, other: &ClassGauges) {
        self.depth += other.depth;
        self.depth_high_water = self.depth_high_water.max(other.depth_high_water);
        self.backlog_bytes += other.backlog_bytes;
        self.backlog_high_water = self.backlog_high_water.max(other.backlog_high_water);
    }
}

/// A mergeable run-metrics accumulator; see the [module docs](self).
///
/// Grows on demand: recording an event for `(link, class)` it has never
/// seen allocates the channel, so one registry serves a single-link
/// Study-A replay and a 40-link mesh alike.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    // Row-major [link][class] channel matrix: one flat allocation, so the
    // per-event lookup is a single multiply + one bounds check instead of
    // a two-level `Vec<Vec<_>>` pointer chase.
    channels: Vec<ChannelMetrics>,
    class_gauges: Vec<ClassGauges>,
    num_links: usize,
    num_classes: usize,
    // Whether more than one link exists (or was preallocated). The
    // network-wide gauge rollup in `class_gauges` is maintained on the hot
    // path only then; single-link registries derive it from their one
    // link's channel gauges at read time (identical by definition) and
    // skip the per-event work.
    multi_link: bool,
    heartbeats: u64,
    scenario_events: u64,
    heap_high_water: usize,
    // `u64::MAX` = "no event yet" — a sentinel keeps `touch` branchless
    // (`min`/`max` compile to cmov) on the per-packet hot path.
    first_event_ticks: u64,
    last_event_ticks: u64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            channels: Vec::new(),
            class_gauges: Vec::new(),
            num_links: 0,
            num_classes: 0,
            multi_link: false,
            heartbeats: 0,
            scenario_events: 0,
            heap_high_water: 0,
            first_event_ticks: u64::MAX,
            last_event_ticks: 0,
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry (channels allocate on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry with `num_links × num_classes` channels
    /// preallocated, so the hot path never grows.
    pub fn with_shape(num_links: usize, num_classes: usize) -> Self {
        MetricsRegistry {
            channels: vec![ChannelMetrics::default(); num_links * num_classes],
            class_gauges: vec![ClassGauges::default(); num_classes],
            num_links,
            num_classes,
            multi_link: num_links > 1,
            ..Self::default()
        }
    }

    #[inline]
    fn channel(&mut self, link: usize, class: usize) -> &mut ChannelMetrics {
        if link >= self.num_links || class >= self.num_classes {
            self.grow(link, class);
        }
        &mut self.channels[link * self.num_classes + class]
    }

    #[cold]
    fn grow(&mut self, link: usize, class: usize) {
        let new_links = self.num_links.max(link + 1);
        let new_classes = self.num_classes.max(class + 1);
        if new_links != self.num_links || new_classes != self.num_classes {
            let mut channels = vec![ChannelMetrics::default(); new_links * new_classes];
            for l in 0..self.num_links {
                for c in 0..self.num_classes {
                    channels[l * new_classes + c] =
                        std::mem::take(&mut self.channels[l * self.num_classes + c]);
                }
            }
            self.channels = channels;
            self.num_links = new_links;
            self.num_classes = new_classes;
        }
        if self.class_gauges.len() < self.num_classes {
            self.class_gauges
                .resize_with(self.num_classes, ClassGauges::default);
        }
        if self.num_links > 1 && !self.multi_link {
            // Promotion to multi-link: start maintaining the network-wide
            // rollup. Every event so far hit the sole existing link, whose
            // channel gauges therefore *are* the aggregate gauges — copy
            // them in so the rollup continues exactly.
            self.multi_link = true;
            for (c, g) in self.class_gauges.iter_mut().enumerate() {
                if let Some(ch) = self.channels.get(c) {
                    g.depth = ch.depth;
                    g.depth_high_water = ch.depth_high_water;
                    g.backlog_bytes = ch.backlog_bytes;
                    g.backlog_high_water = ch.backlog_high_water;
                }
            }
        }
    }

    #[inline(always)]
    fn touch(&mut self, at: Time) {
        let t = at.ticks();
        self.first_event_ticks = self.first_event_ticks.min(t);
        self.last_event_ticks = self.last_event_ticks.max(t);
    }

    /// Number of links seen (or preallocated).
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Per-link metrics (index = link/hop id), materialized from the flat
    /// channel matrix. Cold-path convenience — bind the result before
    /// indexing, and prefer [`num_links`](Self::num_links) for the count.
    pub fn links(&self) -> Vec<LinkMetrics> {
        if self.num_classes == 0 {
            return Vec::new();
        }
        self.channels
            .chunks(self.num_classes)
            .map(|row| LinkMetrics {
                classes: row.to_vec(),
            })
            .collect()
    }

    /// Network-wide per-class gauges (index = class).
    ///
    /// Multi-link registries maintain this rollup online (per-link peaks
    /// need not coincide in time, so it cannot be reconstructed); a
    /// single-link registry's aggregate gauges are its one link's channel
    /// gauges, derived here so the hot path skips the duplicate updates.
    pub fn class_gauges(&self) -> Vec<ClassGauges> {
        if self.multi_link {
            return self.class_gauges.clone();
        }
        (0..self.num_classes)
            .map(|c| {
                let mut g = ClassGauges::default();
                if let Some(ch) = self.channels.get(c) {
                    g.depth = ch.depth;
                    g.depth_high_water = ch.depth_high_water;
                    g.backlog_bytes = ch.backlog_bytes;
                    g.backlog_high_water = ch.backlog_high_water;
                }
                g
            })
            .collect()
    }

    /// Number of classes seen (or preallocated).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total scheduler decisions (derived: one class wins each decision).
    pub fn decisions(&self) -> u64 {
        self.channels.iter().map(|c| c.decisions_won).sum()
    }

    /// Total probe events of all kinds.
    ///
    /// Derived from the event counters (each probe call bumps exactly one:
    /// arrival, enqueue, decision, hop departure, drop, heartbeat, or
    /// scenario event), so the hot path pays nothing for it.
    pub fn probe_events(&self) -> u64 {
        let per_channel: u64 = self
            .channels
            .iter()
            .map(|c| c.arrivals + c.enqueues + c.decisions_won + c.hop_departures + c.drops)
            .sum();
        per_channel + self.heartbeats + self.scenario_events
    }

    /// Heartbeats received from the discrete-event runner.
    pub fn heartbeats(&self) -> u64 {
        self.heartbeats
    }

    /// Dynamic-scenario timeline events applied during the run.
    pub fn scenario_events(&self) -> u64 {
        self.scenario_events
    }

    /// Largest event-queue depth reported by any heartbeat.
    pub fn heap_high_water(&self) -> usize {
        self.heap_high_water
    }

    /// Virtual time of the first event, in ticks (`None` before any event).
    pub fn first_event_ticks(&self) -> Option<u64> {
        (self.first_event_ticks != u64::MAX).then_some(self.first_event_ticks)
    }

    /// Virtual time of the latest event, in ticks.
    pub fn last_event_ticks(&self) -> u64 {
        self.last_event_ticks
    }

    /// Virtual-time span covered, in ticks.
    pub fn virtual_span_ticks(&self) -> u64 {
        self.last_event_ticks
            .saturating_sub(self.first_event_ticks().unwrap_or(0))
    }

    /// Aggregates one class over all links: counters sum; gauges come from
    /// the network-wide rollup (so multi-hop high-water marks are the true
    /// aggregate-gauge peaks, not sums of per-link peaks).
    pub fn class_total(&self, class: usize) -> ChannelMetrics {
        let mut total = ChannelMetrics::default();
        if class < self.num_classes {
            for l in 0..self.num_links {
                total.merge(&self.channels[l * self.num_classes + class]);
            }
        }
        if let Some(g) = self.class_gauges().get(class) {
            total.depth = g.depth;
            total.depth_high_water = g.depth_high_water;
            total.backlog_bytes = g.backlog_bytes;
            total.backlog_high_water = g.backlog_high_water;
        }
        total
    }

    /// Merges `other` into `self`. Exact and lossless: the result equals
    /// the registry that would have observed both event streams (see the
    /// [module docs](self) for the gauge caveat — shards must start and
    /// end drained for high-water marks to be single-stream-identical).
    ///
    /// The merge is order-insensitive — counters sum and high-water marks
    /// take the max, both commutative — so any shard interleaving yields
    /// the same snapshot:
    ///
    /// ```
    /// use simcore::Time;
    /// use telemetry::{MetricsRegistry, PacketId, Probe};
    ///
    /// let shard = |seq: u64| {
    ///     let mut r = MetricsRegistry::with_shape(1, 2);
    ///     let p = PacketId::single_link(seq, (seq % 2) as u8, 100);
    ///     r.on_enqueue(Time::from_ticks(seq * 10), p);
    ///     r.on_depart(
    ///         p,
    ///         Time::from_ticks(seq * 10),
    ///         Time::from_ticks(seq * 10 + 3),
    ///         Time::from_ticks(seq * 10 + 5),
    ///         true,
    ///     );
    ///     r
    /// };
    /// let (a, b, c) = (shard(0), shard(1), shard(2));
    ///
    /// let mut abc = a.clone();
    /// abc.merge(&b);
    /// abc.merge(&c);
    /// let mut cba = c.clone();
    /// cba.merge(&b);
    /// cba.merge(&a);
    /// assert_eq!(abc.to_json(), cba.to_json());
    ///
    /// // Identity: merging an empty registry changes nothing.
    /// let mut id = a.clone();
    /// id.merge(&MetricsRegistry::new());
    /// assert_eq!(id.to_json(), a.to_json());
    /// ```
    pub fn merge(&mut self, other: &MetricsRegistry) {
        if other.num_classes > 0 || other.num_links > 0 {
            self.grow(
                other.num_links.saturating_sub(1),
                other.num_classes.saturating_sub(1),
            );
        }
        // If either side is multi-link the merged rollup must be maintained,
        // and both sides' contributions are needed in materialized form
        // (a single-link side derives its from its one link).
        if self.multi_link || other.multi_link {
            let mine = self.class_gauges();
            self.multi_link = true;
            self.class_gauges = mine;
        }
        for l in 0..other.num_links {
            for c in 0..other.num_classes {
                self.channels[l * self.num_classes + c]
                    .merge(&other.channels[l * other.num_classes + c]);
            }
        }
        if self.multi_link {
            let theirs = other.class_gauges();
            for (g, og) in self.class_gauges.iter_mut().zip(&theirs) {
                g.merge(og);
            }
        }
        self.heartbeats += other.heartbeats;
        self.scenario_events += other.scenario_events;
        self.heap_high_water = self.heap_high_water.max(other.heap_high_water);
        self.first_event_ticks = self.first_event_ticks.min(other.first_event_ticks);
        self.last_event_ticks = self.last_event_ticks.max(other.last_event_ticks);
    }

    /// Serializes the full registry as deterministic JSON (stable key
    /// order, integers only — byte-identical for identical event streams).
    pub fn to_json(&self) -> String {
        let hist = |h: &Histogram| {
            let bins = h
                .bins()
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",");
            format!("{{\"count\":{},\"bins\":[{bins}]}}", h.count())
        };
        let mut s = String::from("{\"schema\":\"propdiff-metrics-v1\",");
        s.push_str(&format!("\"decisions\":{},", self.decisions()));
        s.push_str(&format!("\"probe_events\":{},", self.probe_events()));
        s.push_str(&format!("\"heartbeats\":{},", self.heartbeats));
        s.push_str(&format!("\"scenario_events\":{},", self.scenario_events));
        s.push_str(&format!("\"heap_high_water\":{},", self.heap_high_water));
        match self.first_event_ticks() {
            Some(t) => s.push_str(&format!("\"first_event_ticks\":{t},")),
            None => s.push_str("\"first_event_ticks\":null,"),
        }
        s.push_str(&format!("\"last_event_ticks\":{},", self.last_event_ticks));
        s.push_str(&format!(
            "\"virtual_span_ticks\":{},",
            self.virtual_span_ticks()
        ));
        s.push_str("\"class_gauges\":[");
        for (c, g) in self.class_gauges().iter().enumerate() {
            if c > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"class\":{c},\"depth\":{},\"depth_high_water\":{},\
                 \"backlog_bytes\":{},\"backlog_high_water\":{}}}",
                g.depth, g.depth_high_water, g.backlog_bytes, g.backlog_high_water
            ));
        }
        s.push_str("],\"links\":[");
        for (i, row) in self.channels.chunks(self.num_classes.max(1)).enumerate() {
            if i > 0 {
                s.push(',');
            }
            let link_decisions: u64 = row.iter().map(|c| c.decisions_won).sum();
            s.push_str(&format!("{{\"link\":{i},\"decisions\":{link_decisions},"));
            s.push_str("\"classes\":[");
            for (c, ch) in row.iter().enumerate() {
                if c > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"class\":{c},\"arrivals\":{},\"enqueues\":{},\"departures\":{},\
                     \"hop_departures\":{},\"drops\":{},\"decisions_won\":{},\
                     \"wait_ticks_sum\":{},\"bytes_delivered\":{},\"backlog_bytes_sum\":{},\
                     \"depth\":{},\"depth_high_water\":{},\"backlog_bytes\":{},\
                     \"backlog_high_water\":{},\"delay_hist\":{},\"backlog_hist\":{}}}",
                    ch.arrivals,
                    ch.enqueues,
                    ch.departures,
                    ch.hop_departures,
                    ch.drops,
                    ch.decisions_won,
                    ch.wait_ticks_sum,
                    ch.bytes_delivered,
                    ch.backlog_bytes_sum,
                    ch.depth,
                    ch.depth_high_water,
                    ch.backlog_bytes,
                    ch.backlog_high_water,
                    hist(&ch.delay_hist),
                    hist(&ch.backlog_hist),
                ));
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Reconstructs a registry from the exact JSON [`to_json`](Self::to_json)
    /// emits — the deserialization half of shipping per-shard metrics
    /// sidecars between worker processes.
    ///
    /// The parser is a strict sequential scanner over the deterministic
    /// snapshot format (fixed key order, integers only, no whitespace):
    /// anything else is rejected. Derived fields (`decisions`,
    /// `probe_events`, `virtual_span_ticks`, per-link `decisions`,
    /// histogram `count`) are cross-checked against the reconstructed
    /// state, so corruption fails loudly instead of merging quietly.
    ///
    /// Round trip is exact: `from_json(r.to_json())` rebuilds a registry
    /// whose own `to_json` is byte-identical, and which merges exactly
    /// like the original.
    ///
    /// ```
    /// use simcore::Time;
    /// use telemetry::{MetricsRegistry, PacketId, Probe};
    ///
    /// let mut r = MetricsRegistry::with_shape(1, 4);
    /// let p = PacketId::single_link(0, 2, 100);
    /// r.on_enqueue(Time::from_ticks(7), p);
    /// r.on_depart(p, Time::from_ticks(7), Time::from_ticks(9), Time::from_ticks(12), true);
    ///
    /// let rebuilt = MetricsRegistry::from_json(&r.to_json()).unwrap();
    /// assert_eq!(rebuilt.to_json(), r.to_json());
    /// ```
    pub fn from_json(s: &str) -> Result<MetricsRegistry, String> {
        let mut c = Cursor { s, pos: 0 };
        c.lit("{\"schema\":\"propdiff-metrics-v1\",\"decisions\":")?;
        let decisions = c.u64()?;
        c.lit(",\"probe_events\":")?;
        let probe_events = c.u64()?;
        c.lit(",\"heartbeats\":")?;
        let heartbeats = c.u64()?;
        c.lit(",\"scenario_events\":")?;
        let scenario_events = c.u64()?;
        c.lit(",\"heap_high_water\":")?;
        let heap_high_water = c.u64()? as usize;
        c.lit(",\"first_event_ticks\":")?;
        let first_event_ticks = if c.peek("null") {
            c.lit("null")?;
            u64::MAX
        } else {
            c.u64()?
        };
        c.lit(",\"last_event_ticks\":")?;
        let last_event_ticks = c.u64()?;
        c.lit(",\"virtual_span_ticks\":")?;
        let span = c.u64()?;
        c.lit(",\"class_gauges\":[")?;
        let mut gauges: Vec<ClassGauges> = Vec::new();
        while !c.peek("]") {
            if !gauges.is_empty() {
                c.lit(",")?;
            }
            c.lit(&format!("{{\"class\":{},\"depth\":", gauges.len()))?;
            let depth = c.i64()?;
            c.lit(",\"depth_high_water\":")?;
            let depth_high_water = c.i64()?;
            c.lit(",\"backlog_bytes\":")?;
            let backlog_bytes = c.i64()?;
            c.lit(",\"backlog_high_water\":")?;
            let backlog_high_water = c.i64()?;
            c.lit("}")?;
            gauges.push(ClassGauges {
                depth,
                depth_high_water,
                backlog_bytes,
                backlog_high_water,
            });
        }
        let num_classes = gauges.len();
        c.lit("],\"links\":[")?;
        let mut channels: Vec<ChannelMetrics> = Vec::new();
        let mut num_links = 0usize;
        while !c.peek("]") {
            if num_links > 0 {
                c.lit(",")?;
            }
            c.lit(&format!("{{\"link\":{num_links},\"decisions\":"))?;
            let link_decisions = c.u64()?;
            c.lit(",\"classes\":[")?;
            let mut classes_this_link = 0usize;
            let mut link_decisions_sum = 0u64;
            while !c.peek("]") {
                if classes_this_link > 0 {
                    c.lit(",")?;
                }
                let ch = c.channel(classes_this_link)?;
                link_decisions_sum += ch.decisions_won;
                channels.push(ch);
                classes_this_link += 1;
            }
            c.lit("]}")?;
            if classes_this_link != num_classes {
                return Err(format!(
                    "metrics JSON: link {num_links} has {classes_this_link} classes, \
                     class_gauges has {num_classes}"
                ));
            }
            if link_decisions != link_decisions_sum {
                return Err(format!(
                    "metrics JSON: link {num_links} decisions {link_decisions} != \
                     per-class sum {link_decisions_sum}"
                ));
            }
            num_links += 1;
        }
        c.lit("]}")?;
        if c.pos != s.len() {
            return Err(format!("metrics JSON: trailing bytes at {}", c.pos));
        }
        let multi_link = num_links > 1;
        let r = MetricsRegistry {
            channels,
            // A single-link registry derives its aggregate gauges from its
            // one link at read time; storing defaults here reproduces the
            // in-memory state exactly. Multi-link rollups are first-class.
            class_gauges: if multi_link {
                gauges
            } else {
                vec![ClassGauges::default(); num_classes]
            },
            num_links,
            num_classes,
            multi_link,
            heartbeats,
            scenario_events,
            heap_high_water,
            first_event_ticks,
            last_event_ticks,
        };
        if r.decisions() != decisions {
            return Err(format!(
                "metrics JSON: decisions {decisions} != reconstructed {}",
                r.decisions()
            ));
        }
        if r.probe_events() != probe_events {
            return Err(format!(
                "metrics JSON: probe_events {probe_events} != reconstructed {}",
                r.probe_events()
            ));
        }
        if r.virtual_span_ticks() != span {
            return Err(format!(
                "metrics JSON: virtual_span_ticks {span} != reconstructed {}",
                r.virtual_span_ticks()
            ));
        }
        Ok(r)
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers followed by samples,
    /// histograms as cumulative `_bucket{le=...}` series with `_sum` and
    /// `_count`. Log-bin upper bounds become the `le` thresholds.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let counter = |out: &mut String,
                       name: &str,
                       help: &str,
                       kind: &str,
                       pick: &dyn Fn(&ChannelMetrics) -> u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for (i, row) in self.channels.chunks(self.num_classes.max(1)).enumerate() {
                for (c, ch) in row.iter().enumerate() {
                    out.push_str(&format!(
                        "{name}{{link=\"{i}\",class=\"{c}\"}} {}\n",
                        pick(ch)
                    ));
                }
            }
        };
        counter(
            &mut out,
            "propdiff_arrivals_total",
            "Packets offered per link and class.",
            "counter",
            &|ch| ch.arrivals,
        );
        counter(
            &mut out,
            "propdiff_departures_total",
            "End-of-life departures per link and class.",
            "counter",
            &|ch| ch.departures,
        );
        counter(
            &mut out,
            "propdiff_drops_total",
            "Buffer drops per link and class.",
            "counter",
            &|ch| ch.drops,
        );
        counter(
            &mut out,
            "propdiff_decisions_won_total",
            "Scheduler decisions won per link and class.",
            "counter",
            &|ch| ch.decisions_won,
        );
        counter(
            &mut out,
            "propdiff_bytes_delivered_total",
            "Bytes delivered per link and class.",
            "counter",
            &|ch| ch.bytes_delivered,
        );
        counter(
            &mut out,
            "propdiff_queue_depth",
            "Queued packets per link and class.",
            "gauge",
            &|ch| ch.depth.max(0) as u64,
        );
        counter(
            &mut out,
            "propdiff_queue_depth_high_water",
            "Peak queued packets per link and class.",
            "gauge",
            &|ch| ch.depth_high_water.max(0) as u64,
        );
        counter(
            &mut out,
            "propdiff_backlog_bytes",
            "Queued bytes per link and class.",
            "gauge",
            &|ch| ch.backlog_bytes.max(0) as u64,
        );
        counter(
            &mut out,
            "propdiff_backlog_bytes_high_water",
            "Peak queued bytes per link and class.",
            "gauge",
            &|ch| ch.backlog_high_water.max(0) as u64,
        );

        out.push_str(
            "# HELP propdiff_delay_ticks Hop-local queueing delay per link and class, in ticks.\n\
             # TYPE propdiff_delay_ticks histogram\n",
        );
        for (i, row) in self.channels.chunks(self.num_classes.max(1)).enumerate() {
            for (c, ch) in row.iter().enumerate() {
                let mut cum = 0u64;
                for (k, &n) in ch.delay_hist.bins().iter().enumerate() {
                    cum += n;
                    let le = Histogram::bin_bounds(k).1;
                    out.push_str(&format!(
                        "propdiff_delay_ticks_bucket{{link=\"{i}\",class=\"{c}\",le=\"{le}\"}} {cum}\n"
                    ));
                }
                out.push_str(&format!(
                    "propdiff_delay_ticks_bucket{{link=\"{i}\",class=\"{c}\",le=\"+Inf\"}} {}\n",
                    ch.delay_hist.count()
                ));
                out.push_str(&format!(
                    "propdiff_delay_ticks_sum{{link=\"{i}\",class=\"{c}\"}} {}\n",
                    ch.wait_ticks_sum
                ));
                out.push_str(&format!(
                    "propdiff_delay_ticks_count{{link=\"{i}\",class=\"{c}\"}} {}\n",
                    ch.delay_hist.count()
                ));
            }
        }

        out.push_str(
            "# HELP propdiff_enqueue_backlog_bytes Backlog observed by each enqueue, in bytes.\n\
             # TYPE propdiff_enqueue_backlog_bytes histogram\n",
        );
        for (i, row) in self.channels.chunks(self.num_classes.max(1)).enumerate() {
            for (c, ch) in row.iter().enumerate() {
                let mut cum = 0u64;
                for (k, &n) in ch.backlog_hist.bins().iter().enumerate() {
                    cum += n;
                    let le = Histogram::bin_bounds(k).1;
                    out.push_str(&format!(
                        "propdiff_enqueue_backlog_bytes_bucket{{link=\"{i}\",class=\"{c}\",le=\"{le}\"}} {cum}\n"
                    ));
                }
                out.push_str(&format!(
                    "propdiff_enqueue_backlog_bytes_bucket{{link=\"{i}\",class=\"{c}\",le=\"+Inf\"}} {}\n",
                    ch.backlog_hist.count()
                ));
                out.push_str(&format!(
                    "propdiff_enqueue_backlog_bytes_sum{{link=\"{i}\",class=\"{c}\"}} {}\n",
                    ch.backlog_bytes_sum
                ));
                out.push_str(&format!(
                    "propdiff_enqueue_backlog_bytes_count{{link=\"{i}\",class=\"{c}\"}} {}\n",
                    ch.backlog_hist.count()
                ));
            }
        }

        for (name, help, v) in [
            (
                "propdiff_decisions_total_all",
                "Scheduler decisions across all links.",
                self.decisions(),
            ),
            (
                "propdiff_probe_events_total",
                "Probe events of all kinds.",
                self.probe_events(),
            ),
            (
                "propdiff_heartbeats_total",
                "Engine heartbeats observed.",
                self.heartbeats,
            ),
            (
                "propdiff_scenario_events_total",
                "Scenario timeline events applied.",
                self.scenario_events,
            ),
            (
                "propdiff_heap_high_water",
                "Peak event-queue depth.",
                self.heap_high_water as u64,
            ),
            (
                "propdiff_virtual_span_ticks",
                "Virtual-time span of the run.",
                self.virtual_span_ticks(),
            ),
        ] {
            let kind = if name.ends_with("_total") || name.ends_with("_total_all") {
                "counter"
            } else {
                "gauge"
            };
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {v}\n"
            ));
        }
        out
    }
}

/// Strict sequential scanner over the deterministic snapshot format —
/// every structural byte is matched literally, so any deviation from
/// [`MetricsRegistry::to_json`]'s output is a parse error.
struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl Cursor<'_> {
    fn lit(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            let found = &self.s[self.pos..self.s.len().min(self.pos + 24)];
            Err(format!(
                "metrics JSON: expected {lit:?} at byte {}, found {found:?}",
                self.pos
            ))
        }
    }

    fn peek(&self, lit: &str) -> bool {
        self.s[self.pos..].starts_with(lit)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let rest = &self.s[self.pos..];
        let len = rest.bytes().take_while(u8::is_ascii_digit).count();
        let v = rest[..len]
            .parse()
            .map_err(|e| format!("metrics JSON: bad integer at byte {}: {e}", self.pos))?;
        self.pos += len;
        Ok(v)
    }

    fn i64(&mut self) -> Result<i64, String> {
        let rest = &self.s[self.pos..];
        let sign = usize::from(rest.starts_with('-'));
        let len = sign + rest[sign..].bytes().take_while(u8::is_ascii_digit).count();
        let v = rest[..len]
            .parse()
            .map_err(|e| format!("metrics JSON: bad integer at byte {}: {e}", self.pos))?;
        self.pos += len;
        Ok(v)
    }

    fn histogram(&mut self) -> Result<Histogram, String> {
        self.lit("{\"count\":")?;
        let count = self.u64()?;
        self.lit(",\"bins\":[")?;
        let mut bins = Vec::new();
        while !self.peek("]") {
            if !bins.is_empty() {
                self.lit(",")?;
            }
            bins.push(self.u64()?);
        }
        self.lit("]}")?;
        let h = Histogram::from_bins(bins);
        if h.count() != count {
            return Err(format!(
                "metrics JSON: histogram count {count} != bin sum {}",
                h.count()
            ));
        }
        Ok(h)
    }

    fn channel(&mut self, class: usize) -> Result<ChannelMetrics, String> {
        self.lit(&format!("{{\"class\":{class},\"arrivals\":"))?;
        let arrivals = self.u64()?;
        self.lit(",\"enqueues\":")?;
        let enqueues = self.u64()?;
        self.lit(",\"departures\":")?;
        let departures = self.u64()?;
        self.lit(",\"hop_departures\":")?;
        let hop_departures = self.u64()?;
        self.lit(",\"drops\":")?;
        let drops = self.u64()?;
        self.lit(",\"decisions_won\":")?;
        let decisions_won = self.u64()?;
        self.lit(",\"wait_ticks_sum\":")?;
        let wait_ticks_sum = self.u64()?;
        self.lit(",\"bytes_delivered\":")?;
        let bytes_delivered = self.u64()?;
        self.lit(",\"backlog_bytes_sum\":")?;
        let backlog_bytes_sum = self.u64()?;
        self.lit(",\"depth\":")?;
        let depth = self.i64()?;
        self.lit(",\"depth_high_water\":")?;
        let depth_high_water = self.i64()?;
        self.lit(",\"backlog_bytes\":")?;
        let backlog_bytes = self.i64()?;
        self.lit(",\"backlog_high_water\":")?;
        let backlog_high_water = self.i64()?;
        self.lit(",\"delay_hist\":")?;
        let delay_hist = self.histogram()?;
        self.lit(",\"backlog_hist\":")?;
        let backlog_hist = self.histogram()?;
        self.lit("}")?;
        Ok(ChannelMetrics {
            arrivals,
            enqueues,
            departures,
            hop_departures,
            drops,
            decisions_won,
            wait_ticks_sum,
            bytes_delivered,
            backlog_bytes_sum,
            depth,
            depth_high_water,
            backlog_bytes,
            backlog_high_water,
            delay_hist,
            backlog_hist,
        })
    }
}

impl Probe for MetricsRegistry {
    // Counters only — never reads the per-class audit slice, so loops can
    // skip computing it (a full scheduler pass per decision).
    const WANTS_DECISION_VALUES: bool = false;

    // `touch` is skipped in `on_arrival` and `on_decision`: the probe
    // lifecycle contract (see [`Probe`]) guarantees an arrival is followed
    // by an enqueue or drop at the same instant, and a decision at `t` by
    // its departure at `finish >= t`, so those calls can never extend the
    // observed first/last-event span.

    #[inline(always)]
    fn on_arrival(&mut self, _at: Time, id: PacketId) {
        self.channel(id.hop as usize, id.class as usize).arrivals += 1;
    }

    #[inline(always)]
    fn on_enqueue(&mut self, at: Time, id: PacketId) {
        self.touch(at);
        let (hop, class) = (id.hop as usize, id.class as usize);
        let ch = self.channel(hop, class);
        ch.enqueues += 1;
        ch.depth += 1;
        ch.depth_high_water = ch.depth_high_water.max(ch.depth);
        ch.backlog_bytes += id.size as i64;
        ch.backlog_high_water = ch.backlog_high_water.max(ch.backlog_bytes);
        let backlog = ch.backlog_bytes.max(0) as u64;
        ch.backlog_bytes_sum += backlog;
        ch.backlog_hist.record_u64(backlog);
        if self.multi_link {
            let g = &mut self.class_gauges[class];
            g.depth += 1;
            g.depth_high_water = g.depth_high_water.max(g.depth);
            g.backlog_bytes += id.size as i64;
            g.backlog_high_water = g.backlog_high_water.max(g.backlog_bytes);
        }
    }

    #[inline(always)]
    fn on_decision(
        &mut self,
        _at: Time,
        _scheduler: &'static str,
        winner: PacketId,
        _values: &[(usize, f64)],
    ) {
        let (hop, class) = (winner.hop as usize, winner.class as usize);
        self.channel(hop, class).decisions_won += 1;
    }

    #[inline(always)]
    fn on_depart(&mut self, id: PacketId, arrival: Time, start: Time, finish: Time, eol: bool) {
        self.touch(finish);
        let (hop, class) = (id.hop as usize, id.class as usize);
        let wait = start.saturating_since(arrival).ticks();
        let ch = self.channel(hop, class);
        ch.depth -= 1;
        ch.backlog_bytes -= id.size as i64;
        ch.hop_departures += 1;
        ch.wait_ticks_sum += wait;
        ch.delay_hist.record_u64(wait);
        if eol {
            ch.departures += 1;
            ch.bytes_delivered += id.size as u64;
        }
        if self.multi_link {
            let g = &mut self.class_gauges[class];
            g.depth -= 1;
            g.backlog_bytes -= id.size as i64;
        }
    }

    #[inline]
    fn on_drop(&mut self, at: Time, id: PacketId, _backlog_bytes: u64, _buffer_bytes: u64) {
        self.touch(at);
        self.channel(id.hop as usize, id.class as usize).drops += 1;
    }

    #[inline]
    fn on_heartbeat(&mut self, at: Time, _events_handled: u64, heap_depth: usize) {
        self.touch(at);
        self.heartbeats += 1;
        self.heap_high_water = self.heap_high_water.max(heap_depth);
    }

    #[inline]
    fn on_scenario_event(&mut self, at: Time, _link: u16, _kind: &'static str, _value: f64) {
        self.touch(at);
        self.scenario_events += 1;
    }
}

/// Validates Prometheus text exposition (format 0.0.4) without any
/// dependencies; returns the number of samples on success.
///
/// Checks: line grammar (`# HELP`, `# TYPE`, samples), metric-name and
/// label syntax, numeric sample values, that a family's `# TYPE` precedes
/// its samples, and that histogram `_bucket` series are cumulative with a
/// final `le="+Inf"` bucket matching `_count`.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn family_of(name: &str) -> &str {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stripped) = name.strip_suffix(suffix) {
                return stripped;
            }
        }
        name
    }
    // (metric name, labels-without-le, is +Inf) -> running bucket check.
    struct BucketRun {
        key: String,
        last_cum: u64,
        saw_inf: bool,
    }
    let mut samples = 0usize;
    let mut sampled: Vec<String> = Vec::new();
    let mut run: Option<BucketRun> = None;
    let finish_run = |run: &mut Option<BucketRun>| -> Result<(), String> {
        if let Some(r) = run.take() {
            if !r.saw_inf {
                return Err(format!(
                    "bucket series {} lacks an le=\"+Inf\" bucket",
                    r.key
                ));
            }
        }
        Ok(())
    };
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let payload = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_name(name) {
                        return Err(format!("line {n}: bad metric name in HELP: {name:?}"));
                    }
                }
                "TYPE" => {
                    if !valid_name(name) {
                        return Err(format!("line {n}: bad metric name in TYPE: {name:?}"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&payload) {
                        return Err(format!("line {n}: unknown TYPE {payload:?}"));
                    }
                    if sampled.iter().any(|s| s == name) {
                        return Err(format!(
                            "line {n}: TYPE for {name} appears after its samples"
                        ));
                    }
                }
                _ => return Err(format!("line {n}: unknown comment keyword {keyword:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            // Bare comments are legal exposition.
            continue;
        }
        // Sample: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample has no value: {line:?}"))?;
        if value.parse::<f64>().is_err() && !["+Inf", "-Inf", "NaN"].contains(&value) {
            return Err(format!("line {n}: non-numeric sample value {value:?}"));
        }
        let (name, labels) = match name_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, labels)
            }
            None => (name_labels, ""),
        };
        if !valid_name(name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        let mut le: Option<String> = None;
        if !labels.is_empty() {
            for pair in labels.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {n}: bad label pair {pair:?}"))?;
                if !valid_name(k) || k.contains(':') {
                    return Err(format!("line {n}: bad label name {k:?}"));
                }
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {n}: unquoted label value {v:?}"))?;
                if v.contains('"') || v.contains('\n') {
                    return Err(format!("line {n}: bad label value {v:?}"));
                }
                if k == "le" {
                    le = Some(v.to_string());
                }
            }
        }
        let family = family_of(name);
        if !sampled.iter().any(|s| s == family) {
            sampled.push(family.to_string());
        }
        // Histogram bucket monotonicity, per contiguous series.
        if name.ends_with("_bucket") {
            let le = le.ok_or_else(|| format!("line {n}: _bucket sample without le label"))?;
            let key: String = format!(
                "{name}{{{}}}",
                labels
                    .split(',')
                    .filter(|p| !p.starts_with("le="))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let cum = value.parse::<f64>().unwrap_or(f64::NAN);
            if cum.is_nan() || cum < 0.0 || cum.fract() != 0.0 {
                return Err(format!(
                    "line {n}: bucket count must be a nonnegative integer"
                ));
            }
            let cum = cum as u64;
            match &mut run {
                Some(r) if r.key == key => {
                    if r.saw_inf {
                        return Err(format!("line {n}: bucket after le=\"+Inf\" in {key}"));
                    }
                    if cum < r.last_cum {
                        return Err(format!(
                            "line {n}: bucket counts not cumulative in {key} ({} then {cum})",
                            r.last_cum
                        ));
                    }
                    r.last_cum = cum;
                    r.saw_inf = le == "+Inf";
                }
                _ => {
                    finish_run(&mut run)?;
                    run = Some(BucketRun {
                        key,
                        last_cum: cum,
                        saw_inf: le == "+Inf",
                    });
                }
            }
        } else {
            finish_run(&mut run)?;
        }
        samples += 1;
    }
    finish_run(&mut run)?;
    if samples == 0 {
        return Err("no samples in exposition".into());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64, class: u8, size: u32) -> PacketId {
        PacketId::single_link(seq, class, size)
    }

    fn hop_id(seq: u64, class: u8, size: u32, hop: u16) -> PacketId {
        PacketId {
            span: seq,
            seq,
            class,
            size,
            hop,
        }
    }

    /// Drives one packet through arrive→enqueue→decide→depart.
    fn one_packet(r: &mut MetricsRegistry, seq: u64, class: u8, at: u64, wait: u64) {
        let p = id(seq, class, 100);
        r.on_arrival(Time::from_ticks(at), p);
        r.on_enqueue(Time::from_ticks(at), p);
        r.on_decision(Time::from_ticks(at + wait), "WTP", p, &[]);
        r.on_depart(
            p,
            Time::from_ticks(at),
            Time::from_ticks(at + wait),
            Time::from_ticks(at + wait + 100),
            true,
        );
    }

    #[test]
    fn lifecycle_counts_and_histograms() {
        let mut r = MetricsRegistry::new();
        one_packet(&mut r, 0, 0, 0, 5);
        one_packet(&mut r, 1, 1, 50, 40);
        let links = r.links();
        let c0 = &links[0].classes[0];
        assert_eq!(c0.arrivals, 1);
        assert_eq!(c0.departures, 1);
        assert_eq!(c0.hop_departures, 1);
        assert_eq!(c0.wait_ticks_sum, 5);
        assert_eq!(c0.delay_hist.count(), 1);
        assert_eq!(c0.delay_hist.bins()[3], 1); // 5 ∈ [4, 8)
        assert_eq!(c0.depth, 0);
        assert_eq!(c0.depth_high_water, 1);
        assert_eq!(r.class_gauges()[0].depth, 0);
        assert_eq!(r.class_gauges()[0].depth_high_water, 1);
        assert_eq!(r.decisions(), 2);
        assert_eq!(r.probe_events(), 8);
        assert_eq!(r.num_classes(), 2);
    }

    #[test]
    fn per_link_channels_are_separate() {
        let mut r = MetricsRegistry::new();
        let p0 = hop_id(0, 0, 100, 0);
        let p1 = hop_id(0, 0, 100, 2);
        r.on_enqueue(Time::ZERO, p0);
        r.on_enqueue(Time::ZERO, p1);
        assert_eq!(r.num_links(), 3);
        let links = r.links();
        assert_eq!(links.len(), 3);
        assert_eq!(links[0].classes[0].enqueues, 1);
        assert_eq!(links[2].classes[0].enqueues, 1);
        assert_eq!(links[1].classes[0].enqueues, 0);
        // The network-wide gauge saw both.
        assert_eq!(r.class_gauges()[0].depth, 2);
        assert_eq!(r.class_gauges()[0].depth_high_water, 2);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let mut a = MetricsRegistry::new();
        one_packet(&mut a, 0, 0, 0, 3);
        let mut b = MetricsRegistry::new();
        one_packet(&mut b, 1, 1, 10, 70);
        one_packet(&mut b, 2, 0, 200, 9);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());

        // Identical to single-stream accumulation.
        let mut whole = MetricsRegistry::new();
        one_packet(&mut whole, 0, 0, 0, 3);
        one_packet(&mut whole, 1, 1, 10, 70);
        one_packet(&mut whole, 2, 0, 200, 9);
        assert_eq!(ab.to_json(), whole.to_json());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = MetricsRegistry::new();
        one_packet(&mut a, 0, 0, 0, 3);
        let before = a.to_json();
        a.merge(&MetricsRegistry::new());
        assert_eq!(a.to_json(), before);
        let mut empty = MetricsRegistry::new();
        empty.merge(&a);
        assert_eq!(empty.to_json(), before);
    }

    #[test]
    fn json_is_balanced_and_stable() {
        let mut r = MetricsRegistry::with_shape(2, 3);
        one_packet(&mut r, 0, 2, 0, 5);
        let j = r.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"schema\":\"propdiff-metrics-v1\""));
        assert_eq!(j, r.clone().to_json());
    }

    #[test]
    fn from_json_round_trips_byte_identically() {
        // Empty.
        let empty = MetricsRegistry::new();
        let parsed = MetricsRegistry::from_json(&empty.to_json()).unwrap();
        assert_eq!(parsed.to_json(), empty.to_json());

        // Single-link with traffic (the Study-A shard sidecar shape).
        let mut r = MetricsRegistry::with_shape(1, 4);
        for s in 0..25 {
            one_packet(&mut r, s, (s % 4) as u8, s * 13, s % 7);
        }
        r.on_heartbeat(Time::from_ticks(999), 50, 12);
        let parsed = MetricsRegistry::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.to_json(), r.to_json());

        // Multi-link (Study B shape) — the rollup gauges survive.
        let mut m = MetricsRegistry::new();
        m.on_enqueue(Time::ZERO, hop_id(0, 1, 100, 0));
        m.on_enqueue(Time::ZERO, hop_id(0, 1, 100, 2));
        let parsed = MetricsRegistry::from_json(&m.to_json()).unwrap();
        assert_eq!(parsed.to_json(), m.to_json());
        assert_eq!(parsed.class_gauges()[1].depth, 2);
    }

    #[test]
    fn parsed_registry_merges_like_the_original() {
        // Per-shard sidecars round-tripped through JSON must merge into
        // the same snapshot as the in-memory registries — the property the
        // multi-process farm's metrics path rests on.
        let shard = |lo: u64, hi: u64| {
            let mut r = MetricsRegistry::with_shape(1, 3);
            for s in lo..hi {
                one_packet(&mut r, s, (s % 3) as u8, s * 10, s % 5);
            }
            r
        };
        let (a, b) = (shard(0, 9), shard(9, 20));
        let mut direct = a.clone();
        direct.merge(&b);

        let mut via_json = MetricsRegistry::from_json(&a.to_json()).unwrap();
        via_json.merge(&MetricsRegistry::from_json(&b.to_json()).unwrap());
        assert_eq!(via_json.to_json(), direct.to_json());
    }

    #[test]
    fn from_json_rejects_corruption() {
        let mut r = MetricsRegistry::with_shape(1, 2);
        one_packet(&mut r, 0, 1, 5, 3);
        let good = r.to_json();
        assert!(MetricsRegistry::from_json("").is_err());
        assert!(MetricsRegistry::from_json("{}").is_err());
        assert!(MetricsRegistry::from_json(&good[..good.len() - 1]).is_err());
        assert!(MetricsRegistry::from_json(&format!("{good} ")).is_err());
        // A tampered derived field is caught by the cross-check.
        let tampered = good.replacen("\"decisions\":1", "\"decisions\":9", 1);
        assert_ne!(tampered, good);
        assert!(MetricsRegistry::from_json(&tampered).is_err());
    }

    #[test]
    fn prometheus_exposition_validates() {
        let mut r = MetricsRegistry::new();
        for s in 0..20 {
            one_packet(&mut r, s, (s % 3) as u8, s * 10, s);
        }
        r.on_heartbeat(Time::from_ticks(500), 100, 7);
        let text = r.to_prometheus();
        let n = validate_prometheus(&text).expect("exposition should validate");
        assert!(n > 20, "expected a rich exposition, got {n} samples");
        assert!(text.contains("propdiff_delay_ticks_bucket"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("propdiff_x notanumber\n").is_err());
        assert!(validate_prometheus("9bad_name 1\n").is_err());
        assert!(validate_prometheus("m_bucket{le=\"1\"} x\n").is_err());
        // Non-cumulative buckets.
        let bad = "m_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"+Inf\"} 5\n";
        assert!(validate_prometheus(bad).is_err());
        // Missing +Inf.
        let bad = "m_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 7\n";
        assert!(validate_prometheus(bad).is_err());
        // TYPE after samples.
        let bad = "m 1\n# TYPE m counter\n";
        assert!(validate_prometheus(bad).is_err());
    }

    #[test]
    fn validator_accepts_minimal_exposition() {
        let ok = "# HELP m help text\n# TYPE m counter\nm 1\nm{a=\"x\"} 2.5\n";
        assert_eq!(validate_prometheus(ok), Ok(2));
    }
}
