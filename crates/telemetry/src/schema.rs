//! Dependency-free schema validation for the JSONL trace export.
//!
//! `propdiff-trace --validate` and the CI telemetry job run every emitted
//! line through [`validate_line`], so a malformed exporter fails loudly
//! instead of producing a trace no tool can read. The checker is a small
//! recursive-descent JSON parser (syntax) plus per-event required-key
//! tables (vocabulary) — exactly the contract documented on
//! [`crate::JsonlSink`].

use std::collections::BTreeMap;

/// The JSON value kinds the schema distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A number literal.
    Number,
    /// A string literal.
    String,
    /// `true` or `false`.
    Bool,
    /// An array.
    Array,
    /// A nested object.
    Object,
}

/// A schema violation, with enough context to find the bad line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based line number (0 when validating a single line).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

// ---- minimal JSON scanner -------------------------------------------------

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}', found end of input", b as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(h) if h.is_ascii_hexdigit() => {}
                                _ => return Err("bad \\u escape".into()),
                            }
                        }
                        out.push('?');
                    }
                    Some(e @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                        out.push(e as char)
                    }
                    _ => return Err("bad escape".into()),
                },
                Some(b) => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("expected a number at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map_err(|_| format!("bad number literal '{text}'"))?;
        Ok(())
    }

    /// Consumes one JSON value, returning its kind.
    fn value(&mut self) -> Result<Kind, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                self.string()?;
                Ok(Kind::String)
            }
            Some(b'{') => self.object().map(|_| Kind::Object),
            Some(b'[') => {
                self.expect(b'[')?;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.bump();
                    return Ok(Kind::Array);
                }
                loop {
                    self.value()?;
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => {}
                        Some(b']') => return Ok(Kind::Array),
                        _ => return Err("expected ',' or ']' in array".into()),
                    }
                }
            }
            Some(b't') => self.literal("true").map(|_| Kind::Bool),
            Some(b'f') => self.literal("false").map(|_| Kind::Bool),
            Some(b'n') => Err("null is not part of the trace schema".into()),
            Some(_) => {
                self.number()?;
                Ok(Kind::Number)
            }
            None => Err("expected a value, found end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            if self.bump() != Some(b) {
                return Err(format!("bad literal (expected '{lit}')"));
            }
        }
        Ok(())
    }

    /// Consumes one object, returning its top-level keys and value kinds.
    fn object(&mut self) -> Result<BTreeMap<String, Kind>, String> {
        self.expect(b'{')?;
        let mut keys = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let kind = self.value()?;
            if keys.insert(key.clone(), kind).is_some() {
                return Err(format!("duplicate key \"{key}\""));
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(keys),
                _ => return Err("expected ',' or '}' in object".into()),
            }
        }
    }
}

/// Parses `line` as a single JSON object, returning top-level keys → kinds.
fn parse_object(line: &str) -> Result<BTreeMap<String, Kind>, String> {
    let mut sc = Scanner::new(line);
    let keys = sc.object()?;
    sc.skip_ws();
    if sc.peek().is_some() {
        return Err("trailing bytes after the JSON object".into());
    }
    Ok(keys)
}

/// Required `key → kind` table for each event type.
fn required(ev: &str) -> Option<&'static [(&'static str, Kind)]> {
    const PACKET: &[(&str, Kind)] = &[
        ("t", Kind::Number),
        ("span", Kind::Number),
        ("seq", Kind::Number),
        ("class", Kind::Number),
        ("size", Kind::Number),
        ("hop", Kind::Number),
    ];
    const DECISION: &[(&str, Kind)] = &[
        ("t", Kind::Number),
        ("hop", Kind::Number),
        ("sched", Kind::String),
        ("winner", Kind::Number),
        ("span", Kind::Number),
        ("values", Kind::Array),
    ];
    const DEPART: &[(&str, Kind)] = &[
        ("t", Kind::Number),
        ("span", Kind::Number),
        ("seq", Kind::Number),
        ("class", Kind::Number),
        ("size", Kind::Number),
        ("hop", Kind::Number),
        ("arrival", Kind::Number),
        ("start", Kind::Number),
        ("finish", Kind::Number),
        ("eol", Kind::Bool),
    ];
    const DROP: &[(&str, Kind)] = &[
        ("t", Kind::Number),
        ("span", Kind::Number),
        ("seq", Kind::Number),
        ("class", Kind::Number),
        ("size", Kind::Number),
        ("hop", Kind::Number),
        ("backlog", Kind::Number),
        ("buffer", Kind::Number),
    ];
    const HEARTBEAT: &[(&str, Kind)] = &[
        ("t", Kind::Number),
        ("events", Kind::Number),
        ("heap", Kind::Number),
    ];
    const SCENARIO: &[(&str, Kind)] = &[
        ("t", Kind::Number),
        ("link", Kind::Number),
        ("kind", Kind::String),
        ("value", Kind::Number),
    ];
    match ev {
        "arrival" | "enqueue" => Some(PACKET),
        "decision" => Some(DECISION),
        "depart" => Some(DEPART),
        "drop" => Some(DROP),
        "heartbeat" => Some(HEARTBEAT),
        "scenario" => Some(SCENARIO),
        _ => None,
    }
}

/// Validates one JSONL trace line: well-formed JSON object, a known `ev`
/// type, and every required field present with the right kind.
pub fn validate_line(line: &str) -> Result<(), SchemaError> {
    let fail = |message: String| SchemaError { line: 0, message };
    let keys = parse_object(line).map_err(fail)?;
    match keys.get("ev") {
        Some(Kind::String) => {}
        Some(_) => return Err(fail("\"ev\" must be a string".into())),
        None => return Err(fail("missing \"ev\" field".into())),
    }
    // Re-scan just the ev value (the scanner above discarded string text
    // positions; cheapest is a targeted extraction).
    let ev = extract_ev(line).ok_or_else(|| fail("cannot extract \"ev\" value".into()))?;
    let table = required(&ev).ok_or_else(|| fail(format!("unknown event type \"{ev}\"")))?;
    for (key, kind) in table {
        match keys.get(*key) {
            Some(k) if k == kind => {}
            Some(k) => {
                return Err(fail(format!(
                    "\"{ev}\" field \"{key}\" has kind {k:?}, expected {kind:?}"
                )))
            }
            None => return Err(fail(format!("\"{ev}\" event missing field \"{key}\""))),
        }
    }
    Ok(())
}

/// Extracts the value of the `"ev"` key (first occurrence).
fn extract_ev(line: &str) -> Option<String> {
    let idx = line.find("\"ev\":")?;
    let rest = &line[idx + 5..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Validates a whole JSONL document (one event per line; blank lines are
/// rejected). Returns the number of validated lines.
pub fn validate_jsonl(text: &str) -> Result<usize, SchemaError> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        validate_line(line).map_err(|mut e| {
            e.line = i + 1;
            e
        })?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_ARRIVAL: &str =
        "{\"ev\":\"arrival\",\"t\":0,\"span\":0,\"seq\":0,\"class\":1,\"size\":100,\"hop\":0}";
    const GOOD_DECISION: &str = "{\"ev\":\"decision\",\"t\":3,\"hop\":0,\"sched\":\"WTP\",\"winner\":1,\"span\":0,\"values\":[[0,1.5],[1,6]]}";

    #[test]
    fn accepts_documented_lines() {
        validate_line(GOOD_ARRIVAL).unwrap();
        validate_line(GOOD_DECISION).unwrap();
        validate_line("{\"ev\":\"heartbeat\",\"t\":9,\"events\":100,\"heap\":4}").unwrap();
        validate_line(
            "{\"ev\":\"depart\",\"t\":103,\"span\":0,\"seq\":0,\"class\":1,\"size\":100,\"hop\":0,\
             \"arrival\":0,\"start\":3,\"finish\":103,\"eol\":true}",
        )
        .unwrap();
        validate_line(
            "{\"ev\":\"drop\",\"t\":10,\"span\":1,\"seq\":1,\"class\":0,\"size\":40,\"hop\":0,\
             \"backlog\":200,\"buffer\":256}",
        )
        .unwrap();
        validate_line(
            "{\"ev\":\"scenario\",\"t\":500,\"link\":2,\"kind\":\"set_link_rate\",\"value\":3.125}",
        )
        .unwrap();
    }

    #[test]
    fn scenario_event_requires_its_fields() {
        let e =
            validate_line("{\"ev\":\"scenario\",\"t\":500,\"link\":2,\"value\":1}").unwrap_err();
        assert!(e.message.contains("missing field \"kind\""), "{e}");
        let e = validate_line(
            "{\"ev\":\"scenario\",\"t\":500,\"link\":2,\"kind\":\"link_up\",\"value\":\"x\"}",
        )
        .unwrap_err();
        assert!(e.message.contains("expected Number"), "{e}");
    }

    #[test]
    fn rejects_missing_field() {
        let e = validate_line("{\"ev\":\"heartbeat\",\"t\":9,\"events\":100}").unwrap_err();
        assert!(e.message.contains("missing field \"heap\""), "{e}");
    }

    #[test]
    fn rejects_wrong_kind() {
        let e = validate_line("{\"ev\":\"heartbeat\",\"t\":\"nine\",\"events\":1,\"heap\":0}")
            .unwrap_err();
        assert!(e.message.contains("expected Number"), "{e}");
    }

    #[test]
    fn rejects_unknown_event_and_bad_json() {
        assert!(validate_line("{\"ev\":\"teleport\",\"t\":0}").is_err());
        assert!(validate_line("{\"ev\":\"arrival\"").is_err());
        assert!(validate_line("not json at all").is_err());
        assert!(validate_line("{\"t\":0}").is_err());
        assert!(validate_line("{\"ev\":\"arrival\",\"t\":0} trailing").is_err());
        assert!(validate_line("{\"ev\":\"arrival\",\"ev\":\"arrival\"}").is_err());
    }

    #[test]
    fn validate_jsonl_reports_line_numbers() {
        let doc = format!("{GOOD_ARRIVAL}\n{GOOD_DECISION}\nbroken\n");
        let e = validate_jsonl(&doc).unwrap_err();
        assert_eq!(e.line, 3);
        let ok = format!("{GOOD_ARRIVAL}\n{GOOD_DECISION}\n");
        assert_eq!(validate_jsonl(&ok).unwrap(), 2);
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        validate_line(
            "{\"ev\":\"decision\",\"t\":1,\"hop\":0,\"sched\":\"A\\\"B\",\"winner\":0,\"span\":0,\
             \"values\":[[0,-1.5e3]]}",
        )
        .unwrap();
    }
}
