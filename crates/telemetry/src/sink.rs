//! Trace sinks: JSONL and Chrome `trace_event` exporters.

use std::io::{self, Write};

use simcore::Time;

use crate::probe::{PacketId, Probe};

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats the shared identity fields of a packet event.
fn id_fields(id: PacketId) -> String {
    format!(
        "\"span\":{},\"seq\":{},\"class\":{},\"size\":{},\"hop\":{}",
        id.span, id.seq, id.class, id.size, id.hop
    )
}

/// A line-per-event JSONL exporter.
///
/// Each probe event becomes exactly one JSON object on its own line, with a
/// stable key order, so the byte stream is a pure function of the event
/// stream — the golden-determinism tests pin the trace-replay and streaming
/// paths to identical JSONL output. Line vocabulary (see [`crate::schema`]
/// for the machine-checkable version):
///
/// ```text
/// {"ev":"arrival","t":…,"span":…,"seq":…,"class":…,"size":…,"hop":…}
/// {"ev":"enqueue", same fields}
/// {"ev":"decision","t":…,"hop":…,"sched":"WTP","winner":…,"span":…,"values":[[class,value],…]}
/// {"ev":"depart","t":finish,…id fields…,"arrival":…,"start":…,"finish":…,"eol":true|false}
/// {"ev":"drop","t":…,…id fields…,"backlog":…,"buffer":…}
/// {"ev":"heartbeat","t":…,"events":…,"heap":…}
/// {"ev":"scenario","t":…,"link":…,"kind":"set_sdp","value":…}
/// ```
///
/// Write errors are sticky: the first failure is remembered, later events
/// are discarded, and [`JsonlSink::finish`] reports it.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<io::Error>,
    lines: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer (hand it something buffered for real runs).
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            error: None,
            lines: 0,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    fn line(&mut self, body: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{body}") {
            self.error = Some(e);
        } else {
            self.lines += 1;
        }
    }

    /// Flushes and returns the writer, or the first write error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Probe for JsonlSink<W> {
    fn on_arrival(&mut self, at: Time, id: PacketId) {
        self.line(&format!(
            "{{\"ev\":\"arrival\",\"t\":{},{}}}",
            at.ticks(),
            id_fields(id)
        ));
    }

    fn on_enqueue(&mut self, at: Time, id: PacketId) {
        self.line(&format!(
            "{{\"ev\":\"enqueue\",\"t\":{},{}}}",
            at.ticks(),
            id_fields(id)
        ));
    }

    fn on_decision(
        &mut self,
        at: Time,
        scheduler: &'static str,
        winner: PacketId,
        values: &[(usize, f64)],
    ) {
        let mut vals = String::from("[");
        for (i, (c, v)) in values.iter().enumerate() {
            if i > 0 {
                vals.push(',');
            }
            vals.push_str(&format!("[{c},{v}]"));
        }
        vals.push(']');
        self.line(&format!(
            "{{\"ev\":\"decision\",\"t\":{},\"hop\":{},\"sched\":\"{}\",\"winner\":{},\"span\":{},\"values\":{}}}",
            at.ticks(),
            winner.hop,
            escape(scheduler),
            winner.class,
            winner.span,
            vals
        ));
    }

    fn on_depart(&mut self, id: PacketId, arrival: Time, start: Time, finish: Time, eol: bool) {
        self.line(&format!(
            "{{\"ev\":\"depart\",\"t\":{},{},\"arrival\":{},\"start\":{},\"finish\":{},\"eol\":{}}}",
            finish.ticks(),
            id_fields(id),
            arrival.ticks(),
            start.ticks(),
            finish.ticks(),
            eol
        ));
    }

    fn on_drop(&mut self, at: Time, id: PacketId, backlog_bytes: u64, buffer_bytes: u64) {
        self.line(&format!(
            "{{\"ev\":\"drop\",\"t\":{},{},\"backlog\":{},\"buffer\":{}}}",
            at.ticks(),
            id_fields(id),
            backlog_bytes,
            buffer_bytes
        ));
    }

    fn on_heartbeat(&mut self, at: Time, events_handled: u64, heap_depth: usize) {
        self.line(&format!(
            "{{\"ev\":\"heartbeat\",\"t\":{},\"events\":{},\"heap\":{}}}",
            at.ticks(),
            events_handled,
            heap_depth
        ));
    }

    fn on_scenario_event(&mut self, at: Time, link: u16, kind: &'static str, value: f64) {
        self.line(&format!(
            "{{\"ev\":\"scenario\",\"t\":{},\"link\":{},\"kind\":\"{}\",\"value\":{}}}",
            at.ticks(),
            link,
            escape(kind),
            value
        ));
    }
}

/// A Chrome `trace_event` exporter — open the result in `chrome://tracing`
/// or <https://ui.perfetto.dev> for a visual packet timeline.
///
/// Mapping (1 virtual tick = 1 µs on the timeline):
///
/// * packet lifetime — **async span** (`ph:"b"` at arrival, `ph:"e"` at the
///   end-of-life departure) keyed by `id = span`, so a multi-hop journey is
///   one horizontal track; intermediate-hop departures appear as async
///   instants (`ph:"n"`) on the same track;
/// * scheduler decision — instant event named `"SCHED→class N"` carrying
///   the per-class decision values in `args`;
/// * drop — instant event carrying buffer occupancy at the drop instant;
/// * heartbeat — counter event (`ph:"C"`) plotting event-queue depth.
///
/// Tracks are laid out `pid = 0`, `tid = class + 1` (Chrome hides tid 0 in
/// some builds). Errors are sticky as in [`JsonlSink`].
#[derive(Debug)]
pub struct ChromeTraceSink<W: Write> {
    out: W,
    error: Option<io::Error>,
    first: bool,
    events: u64,
}

impl<W: Write> ChromeTraceSink<W> {
    /// Wraps a writer and emits the JSON preamble.
    pub fn new(mut out: W) -> Self {
        let error = out
            .write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
            .err();
        ChromeTraceSink {
            out,
            error,
            first: true,
            events: 0,
        }
    }

    /// Trace events successfully written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn event(&mut self, body: &str) {
        if self.error.is_some() {
            return;
        }
        let sep = if self.first { "" } else { ",\n" };
        self.first = false;
        if let Err(e) = write!(self.out, "{sep}{body}") {
            self.error = Some(e);
        } else {
            self.events += 1;
        }
    }

    /// Closes the JSON document, flushes, and returns the writer (or the
    /// first write error). Without this call the file is truncated JSON.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.write_all(b"\n]}\n")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> Probe for ChromeTraceSink<W> {
    fn on_arrival(&mut self, at: Time, id: PacketId) {
        self.event(&format!(
            "{{\"name\":\"class {}\",\"cat\":\"packet\",\"ph\":\"b\",\"id\":{},\"ts\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"seq\":{},\"size\":{}}}}}",
            id.class + 1,
            id.span,
            at.ticks(),
            id.class as u32 + 1,
            id.seq,
            id.size
        ));
    }

    fn on_decision(
        &mut self,
        at: Time,
        scheduler: &'static str,
        winner: PacketId,
        values: &[(usize, f64)],
    ) {
        let mut args = String::from("{");
        args.push_str(&format!("\"winner\":{}", winner.class));
        for (c, v) in values {
            args.push_str(&format!(",\"c{c}\":{v}"));
        }
        args.push('}');
        self.event(&format!(
            "{{\"name\":\"{}\\u2192class {}\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\
             \"tid\":{},\"args\":{}}}",
            escape(scheduler),
            winner.class + 1,
            at.ticks(),
            winner.class as u32 + 1,
            args
        ));
    }

    fn on_depart(&mut self, id: PacketId, _arrival: Time, start: Time, finish: Time, eol: bool) {
        let ph = if eol { "e" } else { "n" };
        self.event(&format!(
            "{{\"name\":\"class {}\",\"cat\":\"packet\",\"ph\":\"{}\",\"id\":{},\"ts\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"hop\":{},\"start\":{}}}}}",
            id.class + 1,
            ph,
            id.span,
            finish.ticks(),
            id.class as u32 + 1,
            id.hop,
            start.ticks()
        ));
    }

    fn on_drop(&mut self, at: Time, id: PacketId, backlog_bytes: u64, buffer_bytes: u64) {
        self.event(&format!(
            "{{\"name\":\"drop class {}\",\"cat\":\"drop\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\
             \"args\":{{\"span\":{},\"backlog\":{},\"buffer\":{}}}}}",
            id.class + 1,
            at.ticks(),
            id.class as u32 + 1,
            id.span,
            backlog_bytes,
            buffer_bytes
        ));
    }

    fn on_heartbeat(&mut self, at: Time, _events_handled: u64, heap_depth: usize) {
        self.event(&format!(
            "{{\"name\":\"event queue\",\"cat\":\"engine\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
             \"args\":{{\"depth\":{}}}}}",
            at.ticks(),
            heap_depth
        ));
    }

    fn on_scenario_event(&mut self, at: Time, link: u16, kind: &'static str, value: f64) {
        // Global instant (scope "g") so the perturbation is a vertical line
        // across every class track.
        self.event(&format!(
            "{{\"name\":\"{}\",\"cat\":\"scenario\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":0,\"tid\":0,\
             \"args\":{{\"link\":{},\"value\":{}}}}}",
            escape(kind),
            at.ticks(),
            link,
            value
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64, class: u8, size: u32) -> PacketId {
        PacketId::single_link(seq, class, size)
    }

    fn drive<P: Probe>(p: &mut P) {
        p.on_arrival(Time::ZERO, id(0, 1, 100));
        p.on_enqueue(Time::ZERO, id(0, 1, 100));
        p.on_decision(
            Time::from_ticks(3),
            "WTP",
            id(0, 1, 100),
            &[(0, 1.5), (1, 6.0)],
        );
        p.on_depart(
            id(0, 1, 100),
            Time::ZERO,
            Time::from_ticks(3),
            Time::from_ticks(103),
            true,
        );
        p.on_drop(Time::from_ticks(104), id(1, 0, 40), 200, 256);
        p.on_heartbeat(Time::from_ticks(105), 42, 3);
        p.on_scenario_event(Time::from_ticks(106), 0, "set_sdp", 0.0);
    }

    #[test]
    fn jsonl_lines_match_the_documented_vocabulary() {
        let mut sink = JsonlSink::new(Vec::new());
        drive(&mut sink);
        assert_eq!(sink.lines(), 7);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        assert_eq!(
            lines[0],
            "{\"ev\":\"arrival\",\"t\":0,\"span\":0,\"seq\":0,\"class\":1,\"size\":100,\"hop\":0}"
        );
        assert_eq!(
            lines[2],
            "{\"ev\":\"decision\",\"t\":3,\"hop\":0,\"sched\":\"WTP\",\"winner\":1,\"span\":0,\"values\":[[0,1.5],[1,6]]}"
        );
        assert!(lines[3].contains("\"eol\":true"));
        assert!(lines[4].contains("\"backlog\":200"));
        assert!(lines[5].contains("\"heap\":3"));
        assert_eq!(
            lines[6],
            "{\"ev\":\"scenario\",\"t\":106,\"link\":0,\"kind\":\"set_sdp\",\"value\":0}"
        );
        // Every line validates against the schema.
        for l in &lines {
            crate::schema::validate_line(l).unwrap();
        }
    }

    #[test]
    fn jsonl_is_deterministic() {
        let run = || {
            let mut sink = JsonlSink::new(Vec::new());
            drive(&mut sink);
            sink.finish().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chrome_trace_brackets_and_pairs() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        drive(&mut sink);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\""));
        assert!(text.trim_end().ends_with("]}"));
        // One begin and one matching end for the departed packet.
        assert_eq!(text.matches("\"ph\":\"b\"").count(), 1);
        assert_eq!(text.matches("\"ph\":\"e\"").count(), 1);
        // Decision + drop instants, global scenario instant, heartbeat.
        assert_eq!(text.matches("\"ph\":\"i\"").count(), 3);
        assert_eq!(text.matches("\"s\":\"g\"").count(), 1);
        assert_eq!(text.matches("\"ph\":\"C\"").count(), 1);
    }

    #[test]
    fn intermediate_hop_departure_is_an_async_instant() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.on_depart(
            id(0, 0, 10),
            Time::ZERO,
            Time::ZERO,
            Time::from_ticks(10),
            false,
        );
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(text.contains("\"ph\":\"n\""));
        assert!(!text.contains("\"ph\":\"e\""));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn sticky_error_surfaces_in_finish() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.on_heartbeat(Time::ZERO, 0, 0);
        sink.on_heartbeat(Time::ZERO, 1, 0); // discarded, no panic
        assert_eq!(sink.lines(), 0);
        assert!(sink.finish().is_err());
    }
}
