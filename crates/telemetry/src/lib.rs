//! # telemetry — zero-cost packet-lifecycle tracing and run metrics
//!
//! The paper's evidence is time-series: interval-averaged delay ratios,
//! per-packet delays, decision-by-decision scheduler behavior. This crate
//! makes every run auditable at that granularity without taxing the runs
//! that don't need it:
//!
//! * [`Probe`] — a **monomorphized** observer of packet lifecycle events
//!   (arrival, enqueue, scheduler decision, departure, drop) plus engine
//!   internals (virtual-time heartbeat, event-queue depth). Instrumented
//!   loops are generic over `P: Probe` and gate every record construction
//!   behind the associated constant [`Probe::ENABLED`], so the no-op probe
//!   compiles to the uninstrumented loop.
//! * [`NoopProbe`] — the zero-cost default ([`Probe::ENABLED`] ` = false`).
//!   The `perf_baseline` binary proves the "zero" empirically and records
//!   the overhead in `BENCH_propdiff.json`.
//! * [`MetricsRegistry`] — the mergeable metrics substrate: per-link
//!   per-class counters, gauges with high-water marks, and log-bucketed
//!   delay/backlog histograms, all with exact lossless
//!   [`merge`](MetricsRegistry::merge) (shard N runs, merge, get the
//!   single-stream registry bit-for-bit). Snapshots render to
//!   deterministic JSON and to the Prometheus text format (checked by
//!   [`validate_prometheus`]).
//! * [`CountingProbe`] — an allocation-light metrics recorder: a thin
//!   class-checked wrapper over the registry that adds wall-clock
//!   throughput and the flat [`MetricsReport`] snapshot.
//! * [`PddMonitor`] — online PDD conformance: rolling-window per-class
//!   average delays and successive-pair ratios (the paper's Eq. 2)
//!   against a target-epoch schedule, emitting structured [`Violation`]
//!   events on drift outside a tolerance band or outright inversion.
//! * [`JsonlSink`] — one JSON object per event, deterministic byte-for-byte
//!   for a given event stream (golden-tested across replay paths).
//! * [`ChromeTraceSink`] — Chrome `trace_event` JSON (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>): each packet is an
//!   async begin/end span keyed by its span id, with scheduler decisions
//!   and drops as instant events. Multi-hop journeys (Study B) share one
//!   span id across hops, so an end-to-end packet is a single track.
//! * [`schema`] — a dependency-free validator for the JSONL export, used
//!   by the `propdiff-trace --validate` flag and the CI telemetry job.
//!
//! Dependency-wise this crate sits near the bottom of the workspace
//! (`simcore` for time, `stats` for the mergeable histogram), so every
//! layer — `sched`, `qsim`, `netsim`, `experiments`, `conformance` — can
//! speak to the same probe vocabulary.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod monitor;
mod probe;
pub mod registry;
pub mod schema;
mod sink;

pub use metrics::{ClassMetrics, CountingProbe, MetricsReport};
pub use monitor::{MonitorConfig, PddMonitor, Violation, ViolationKind};
pub use probe::{NoopProbe, PacketId, Probe, Tee};
pub use registry::{
    validate_prometheus, ChannelMetrics, ClassGauges, LinkMetrics, MetricsRegistry,
};
pub use sink::{ChromeTraceSink, JsonlSink};
