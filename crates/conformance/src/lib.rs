//! # conformance — the differential correctness net
//!
//! The paper's claims hinge on scheduler minutiae: WTP's waiting-time
//! priorities (§4.2), packetized BPR tracking its fluid counterpart
//! (Proposition 1), the conservation law (Eq. 5), and tie-break rules that
//! silently change results when they drift. This crate judges the
//! production schedulers the way "Universal Packet Scheduling" judges
//! candidate algorithms — by replaying identical workloads against
//! independently written references — in three layers:
//!
//! * [`oracle`] — a from-scratch WTP reference that recomputes every
//!   class's priority at each decision instant and diffs departure
//!   sequences (and per-decision winners, via [`sched::Wtp::peek_winner`])
//!   against `sched::wtp`; plus an Eq. (7) feasibility cross-check: the
//!   delays any work-conserving scheduler *achieves* must be a feasible
//!   point of `stats::check_feasibility`.
//! * [`fluid`] — a Proposition-1 tracker bounding packetized BPR's
//!   per-class service lag against the exact fluid server
//!   ([`sched::FluidBpr`]): a few max-packets within draining busy
//!   periods, float-noise reconciliation whenever the backlog empties.
//! * [`metamorphic`] — properties over all 11 bespoke
//!   [`sched::SchedulerKind`]s plus the rank-core `Pifo(_)` kinds: the
//!   Eq. 5 conservation audit on overloaded traffic, exact time/size
//!   rescaling invariance, statistical class-label permutation invariance
//!   of delay ratios, and trace-replay ↔ streaming `MergedStream`
//!   interleave equivalence.
//! * [`rank_diff`] — the rank-core differential: every bespoke scheduler
//!   replayed in lockstep against its `sched::rank` PIFO twin, asserting
//!   bit-identical per-decision winners (via decision-value audits and
//!   `peek_winner` hooks) and departure timestamps on both the trace and
//!   streaming replay paths.
//! * [`decompose`] — the mesh-decomposition differential: the link-level
//!   decomposition engine vs the exact mesh engine on seeded small
//!   fabrics (exact packet conservation at any load, per-class
//!   end-to-end waits within a documented tolerance at moderate load), a
//!   from-scratch ECMP route-hash oracle, shard-schedule invariance, and
//!   a byte-axis dilation metamorphic check.
//!
//! [`suite`] names each check so the `conformance` binary (the **mutation
//! smoke-runner**) can run them all and prove the net catches a seeded
//! tie-break flip (`--features mutated`, see `src/bin/conformance.rs`).
//!
//! Case counts of the property tests scale with the `PROPTEST_CASES`
//! environment variable (see the `proptest` shim); CI runs the suite at an
//! elevated count.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod decompose;
pub mod fluid;
pub mod metamorphic;
pub mod oracle;
pub mod rank_diff;
pub mod suite;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sched::{Scheduler, SchedulerKind, Sdp};
use simcore::Time;
use traffic::{Trace, TraceEntry};

/// A recorded arrival `(time_ticks, class, size_bytes)` — the same tuple
/// shape `stats::feasibility` consumes.
pub type Arrival = (u64, u8, u32);

/// One departure as the harness records it, in link-tick units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Replay sequence number (arrival order).
    pub seq: u64,
    /// Service class.
    pub class: u8,
    /// Packet length in bytes.
    pub size: u32,
    /// Arrival tick.
    pub arrival: u64,
    /// Tick transmission began.
    pub start: u64,
    /// Tick transmission completed.
    pub finish: u64,
}

impl Dep {
    /// Queueing (waiting) delay in ticks — the paper's delay metric.
    pub fn wait(&self) -> u64 {
        self.start - self.arrival
    }
}

/// Builds a time-sorted [`Trace`] from arrival tuples.
pub fn trace_of(arrivals: &[Arrival]) -> Trace {
    Trace::from_entries(
        arrivals
            .iter()
            .map(|&(t, class, size)| TraceEntry {
                at: Time::from_ticks(t),
                class,
                size,
            })
            .collect(),
    )
}

/// Replays `arrivals` through a freshly built `kind` scheduler on a link
/// of `rate` bytes/tick (via the production `qsim::Session` trace path)
/// and records every departure.
pub fn replay(kind: SchedulerKind, sdp: &Sdp, arrivals: &[Arrival], rate: f64) -> Vec<Dep> {
    let trace = trace_of(arrivals);
    let mut s = kind.build(sdp, rate);
    let mut out = Vec::with_capacity(arrivals.len());
    qsim::Session::trace(&trace, rate).run(s.as_mut(), |d| {
        out.push(Dep {
            seq: d.packet.seq,
            class: d.packet.class,
            size: d.packet.size,
            arrival: d.packet.arrival.ticks(),
            start: d.start.ticks(),
            finish: d.finish.ticks(),
        });
    });
    out
}

/// Replays an already-built scheduler (shares the recording logic of
/// [`replay`] for callers that need a concrete or pre-configured
/// instance).
pub fn replay_on(s: &mut dyn Scheduler, arrivals: &[Arrival], rate: f64) -> Vec<Dep> {
    let trace = trace_of(arrivals);
    let mut out = Vec::with_capacity(arrivals.len());
    qsim::Session::trace(&trace, rate).run(s, |d| {
        out.push(Dep {
            seq: d.packet.seq,
            class: d.packet.class,
            size: d.packet.size,
            arrival: d.packet.arrival.ticks(),
            start: d.start.ticks(),
            finish: d.finish.ticks(),
        });
    });
    out
}

/// Per-class mean queueing delays (ticks) over a departure record; classes
/// with no departures get 0.
pub fn class_mean_waits(deps: &[Dep], num_classes: usize) -> Vec<f64> {
    let mut sum = vec![0.0f64; num_classes];
    let mut cnt = vec![0u64; num_classes];
    for d in deps {
        sum[d.class as usize] += d.wait() as f64;
        cnt[d.class as usize] += 1;
    }
    (0..num_classes)
        .map(|c| {
            if cnt[c] == 0 {
                0.0
            } else {
                sum[c] / cnt[c] as f64
            }
        })
        .collect()
}

/// A seeded random **overloaded** workload: bursts of same-tick arrivals
/// across all 4 paper classes at ~1.5× link capacity, paper-like packet
/// sizes. Same-tick multi-class batches are deliberate: they force the
/// zero-waiting-time priority ties where tie-break rules decide winners —
/// the exact spot mutations hide.
pub fn overloaded_arrivals(seed: u64, packets: usize) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = [40u32, 550, 1500];
    let mut out = Vec::with_capacity(packets);
    let mut t = 0u64;
    while out.len() < packets {
        // Mean inter-batch gap ~1400 ticks carrying ~2100 bytes: ρ ≈ 1.5.
        t += rng.random_below(2800) + 1;
        let burst = 1 + rng.random_below(4) as usize;
        for _ in 0..burst.min(packets - out.len()) {
            let class = rng.random_below(4) as u8;
            let size = sizes[rng.random_below(3) as usize];
            out.push((t, class, size));
        }
    }
    out.sort_by_key(|e| e.0);
    out
}

/// A seeded random **uniform-size** overloaded workload: the same
/// burst/tie structure as [`overloaded_arrivals`] but every packet is 500
/// bytes. The Eq. (7) feasibility witness needs this: `stats`'s feasible
/// region weighs classes by *packet* rate (λ_i · d̄_i), while the exact
/// conservation law (Eq. 5) holds in *bytes* (Σ size·wait). With one
/// packet size the two weightings coincide and the witness is a theorem;
/// with mixed sizes a scheduler that correlates waits with sizes (e.g.
/// strict priority under paper-mix traffic) can legitimately sit outside
/// the packet-weighted region.
pub fn uniform_overloaded_arrivals(seed: u64, packets: usize) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed + 0x5eed_0001);
    const SIZE: u32 = 500;
    let mut out = Vec::with_capacity(packets);
    let mut t = 0u64;
    while out.len() < packets {
        // Mean inter-batch gap ~833 ticks carrying ~1250 bytes: ρ ≈ 1.5.
        t += rng.random_below(1666) + 1;
        let burst = 1 + rng.random_below(4) as usize;
        for _ in 0..burst.min(packets - out.len()) {
            let class = rng.random_below(4) as u8;
            out.push((t, class, SIZE));
        }
    }
    out.sort_by_key(|e| e.0);
    out
}

/// A seeded random workload at a *target utilization* `rho` < 1: Poisson
/// arrivals with paper-like packet sizes, so busy periods keep draining
/// and idle gaps reconcile the packetized/fluid BPR trackers
/// (Proposition 1's regime — the bound is per busy period; under
/// sustained overload the rate-snapshot drift random-walks unboundedly).
pub fn loaded_arrivals(seed: u64, packets: usize, rho: f64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10ad_cafe);
    let sizes = [40u32, 550, 1500];
    let mean_size = (40.0 + 550.0 + 1500.0) / 3.0;
    let mean_gap = mean_size / rho;
    let mut out = Vec::with_capacity(packets);
    let mut t = 0.0f64;
    for _ in 0..packets {
        t += -mean_gap * (1.0 - rng.random::<f64>()).ln();
        let class = rng.random_below(4) as u8;
        let size = sizes[rng.random_below(3) as usize];
        out.push((t.round() as u64 + 1, class, size));
    }
    out.sort_by_key(|e| e.0);
    out
}

/// Largest packet size in a workload (0 when empty).
pub fn max_packet_bytes(arrivals: &[Arrival]) -> u32 {
    arrivals.iter().map(|&(_, _, s)| s).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overloaded_workload_is_sorted_and_overloaded() {
        let a = overloaded_arrivals(3, 400);
        assert_eq!(a.len(), 400);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        let bytes: u64 = a.iter().map(|&(_, _, s)| s as u64).sum();
        let span = a.last().unwrap().0 - a.first().unwrap().0;
        let rho = bytes as f64 / span as f64;
        assert!(rho > 1.1, "expected overload, got ρ = {rho}");
        // Same-tick ties must actually occur (they are the mutation bait).
        assert!(a.windows(2).any(|w| w[0].0 == w[1].0));
    }

    #[test]
    fn replay_records_complete_departures() {
        let a = overloaded_arrivals(1, 100);
        let deps = replay(SchedulerKind::Wtp, &Sdp::paper_default(), &a, 1.0);
        assert_eq!(deps.len(), a.len());
        for d in &deps {
            assert!(d.start >= d.arrival && d.finish > d.start);
        }
        let waits = class_mean_waits(&deps, 4);
        assert_eq!(waits.len(), 4);
    }
}
