//! Differential verification of the rank-core twins.
//!
//! `sched::rank` re-expresses WTP, PAD, HPD, Additive, Strict and FCFS as
//! rank functions on one PIFO core. The rewrite is only trustworthy if it
//! is **bit-identical**: this module replays identical workloads through
//! each bespoke scheduler and its `Pifo(_)` twin and diffs them at three
//! independent levels —
//!
//! 1. **Lockstep manual drive** — a from-scratch replay loop (the
//!    [`oracle`](crate::oracle) drive restated) feeding both schedulers
//!    the same admissions and comparing the dequeued packet at every
//!    decision instant. Before each decision the rank core's
//!    [`decision_values`](sched::Scheduler::decision_values) are
//!    re-argmaxed under the documented tie rule (the
//!    [`Wtp::peek_winner`](sched::Wtp::peek_winner)-style audit hook), so
//!    a tie-break drift inside the core is caught even when the ranks
//!    themselves agree.
//! 2. **Trace replay** — both kinds through the production
//!    `qsim::Session` path, diffing the complete departure records
//!    including start *and finish* timestamps.
//! 3. **Streaming replay** — both kinds through the monomorphized
//!    `MergedStream` path (via [`sched::SchedulerVisitor`]), the same
//!    generator setup the interleave metamorphic uses.
//!
//! The WTP pair additionally runs a concrete-type lockstep where
//! `Wtp::peek_winner` and `PifoCore::peek_winner` are compared directly
//! at every decision instant ([`lockstep_peek_wtp`]).

use std::fmt;

use sched::{PifoCore, RankKind, Scheduler, SchedulerKind, SchedulerVisitor, Sdp, Wtp, WtpRank};
use simcore::Time;
use traffic::{ClassSource, IatDist, MergedStream, SizeDist};

use crate::oracle::tx_ticks;
use crate::{replay, Arrival};

/// The bespoke↔rank twin pairs, in [`RankKind::ALL`] order (LSTF has no
/// bespoke twin and is covered by the metamorphic net instead).
pub fn pairs() -> Vec<(SchedulerKind, SchedulerKind)> {
    RankKind::ALL
        .iter()
        .filter_map(|rk| rk.bespoke_twin().map(|b| (b, SchedulerKind::Pifo(*rk))))
        .collect()
}

/// A point where a rank-core twin disagreed with its bespoke scheduler.
#[derive(Debug, Clone)]
pub struct RankDivergence {
    /// The bespoke scheduler.
    pub bespoke: SchedulerKind,
    /// Its rank-core twin.
    pub rank: SchedulerKind,
    /// Which diff stage caught it.
    pub stage: &'static str,
    /// Decision/departure index of the first disagreement.
    pub index: usize,
    /// Human-readable specifics (winners, records, audit values).
    pub detail: String,
}

impl fmt::Display for RankDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {} diverged at {} #{}: {}",
            self.bespoke.name(),
            self.rank.name(),
            self.stage,
            self.index,
            self.detail
        )
    }
}

fn divergence(
    bespoke: SchedulerKind,
    rank: SchedulerKind,
    stage: &'static str,
    index: usize,
    detail: String,
) -> RankDivergence {
    RankDivergence {
        bespoke,
        rank,
        stage,
        index,
        detail,
    }
}

/// Re-derives the winner from reported decision values under the paper's
/// tie rule (ties to the **higher** class) — an independent recomputation
/// of the core's argmax, so a drifted tie-break inside `dequeue` cannot
/// hide behind agreeing ranks.
fn argmax_paper_rule(values: &[(usize, f64)]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for &(c, p) in values {
        match best {
            Some((_, bp)) if p < bp => {}
            _ => best = Some((c, p)),
        }
    }
    best.map(|(c, _)| c)
}

/// Stage 1: lockstep manual drive of `bespoke` and `rank` over the same
/// time-sorted arrivals at `rate` bytes/tick, diffing per-decision
/// winners (through the rank core's decision-value audit) and every
/// dequeued packet.
pub fn lockstep_diff(
    bespoke: SchedulerKind,
    rank: SchedulerKind,
    sdp: &Sdp,
    arrivals: &[Arrival],
    rate: f64,
) -> Result<(), RankDivergence> {
    let mut b = bespoke.build(sdp, rate);
    let mut r = rank.build(sdp, rate);
    let mut vals: Vec<(usize, f64)> = Vec::new();
    let mut next = 0usize;
    let mut free = 0u64;
    let mut seq = 0u64;
    let mut index = 0usize;
    loop {
        if b.is_empty() {
            if next >= arrivals.len() {
                break;
            }
            let (t, c, sz) = arrivals[next];
            next += 1;
            b.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            r.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            seq += 1;
            free = free.max(t);
        }
        while next < arrivals.len() && arrivals[next].0 <= free {
            let (t, c, sz) = arrivals[next];
            next += 1;
            b.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            r.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            seq += 1;
        }
        // Decision-instant audit: the rank core's reported values,
        // re-argmaxed here, must predict the bespoke winner.
        vals.clear();
        r.decision_values(Time::from_ticks(free), &mut vals);
        let predicted = argmax_paper_rule(&vals);
        let Some(bp) = b.dequeue(Time::from_ticks(free)) else {
            return Err(divergence(
                bespoke,
                rank,
                "lockstep drive",
                index,
                "bespoke scheduler violated work conservation".into(),
            ));
        };
        if predicted != Some(bp.class as usize) {
            return Err(divergence(
                bespoke,
                rank,
                "decision-instant audit",
                index,
                format!(
                    "at t={free} rank values {vals:?} predict class {predicted:?}, \
                     bespoke served class {}",
                    bp.class
                ),
            ));
        }
        let Some(rp) = r.dequeue(Time::from_ticks(free)) else {
            return Err(divergence(
                bespoke,
                rank,
                "lockstep drive",
                index,
                "rank core empty while bespoke was backlogged".into(),
            ));
        };
        if (bp.seq, bp.class) != (rp.seq, rp.class) {
            return Err(divergence(
                bespoke,
                rank,
                "lockstep departure",
                index,
                format!(
                    "at t={free} bespoke served (seq {}, class {}), \
                     rank core served (seq {}, class {}); rank values {vals:?}",
                    bp.seq, bp.class, rp.seq, rp.class
                ),
            ));
        }
        index += 1;
        free += tx_ticks(bp.size, rate);
    }
    if !r.is_empty() {
        return Err(divergence(
            bespoke,
            rank,
            "lockstep drive",
            index,
            "rank core still backlogged after bespoke drained".into(),
        ));
    }
    Ok(())
}

/// The WTP pair's concrete-type lockstep: `Wtp::peek_winner` and
/// `PifoCore::peek_winner` compared directly at every decision instant,
/// then both dequeued — no trait objects, no derived argmax.
pub fn lockstep_peek_wtp(sdp: &Sdp, arrivals: &[Arrival], rate: f64) -> Result<(), String> {
    let mut b = Wtp::new(sdp.clone());
    let mut r = PifoCore::new(sdp.num_classes(), WtpRank::new(sdp.clone()));
    let mut next = 0usize;
    let mut free = 0u64;
    let mut seq = 0u64;
    let mut index = 0usize;
    loop {
        if b.is_empty() {
            if next >= arrivals.len() {
                break;
            }
            let (t, c, sz) = arrivals[next];
            next += 1;
            b.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            r.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            seq += 1;
            free = free.max(t);
        }
        while next < arrivals.len() && arrivals[next].0 <= free {
            let (t, c, sz) = arrivals[next];
            next += 1;
            b.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            r.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            seq += 1;
        }
        let now = Time::from_ticks(free);
        let bw = b.peek_winner(now);
        let rw = r.peek_winner(now);
        if bw != rw {
            return Err(format!(
                "peek_winner diverged at decision #{index} (t={free}): \
                 Wtp peeks {bw:?}, PIFO(WTP) peeks {rw:?}"
            ));
        }
        let bp = b.dequeue(now).expect("backlogged");
        let rp = r.dequeue(now).expect("backlogged");
        if (bp.seq, bp.class) != (rp.seq, rp.class) {
            return Err(format!(
                "dequeue diverged at decision #{index} (t={free}): \
                 Wtp served (seq {}, class {}), PIFO(WTP) served (seq {}, class {})",
                bp.seq, bp.class, rp.seq, rp.class
            ));
        }
        index += 1;
        free += tx_ticks(bp.size, rate);
    }
    Ok(())
}

/// Stage 2: both kinds through the production `qsim::Session` trace path;
/// the complete departure records — sequence, class, size, arrival,
/// start and finish ticks — must be identical.
pub fn replay_diff(
    bespoke: SchedulerKind,
    rank: SchedulerKind,
    sdp: &Sdp,
    arrivals: &[Arrival],
    rate: f64,
) -> Result<(), RankDivergence> {
    let b = replay(bespoke, sdp, arrivals, rate);
    let r = replay(rank, sdp, arrivals, rate);
    if b.len() != r.len() {
        return Err(divergence(
            bespoke,
            rank,
            "trace replay",
            b.len().min(r.len()),
            format!("departure counts differ: {} vs {}", b.len(), r.len()),
        ));
    }
    for (i, (db, dr)) in b.iter().zip(&r).enumerate() {
        if db != dr {
            return Err(divergence(
                bespoke,
                rank,
                "trace replay",
                i,
                format!("bespoke {db:?}, rank core {dr:?}"),
            ));
        }
    }
    Ok(())
}

struct StreamDeps {
    sources: Vec<ClassSource>,
    seed: u64,
    horizon: Time,
}

impl SchedulerVisitor for StreamDeps {
    type Out = Vec<(u64, u8, u64, u64)>;
    fn visit<S: Scheduler>(self, mut s: S) -> Self::Out {
        let stream = MergedStream::per_source(self.sources, self.seed, self.horizon);
        let mut out = Vec::new();
        qsim::run_trace_on(&mut s, stream, 1.0, |d| {
            out.push((
                d.packet.seq,
                d.packet.class,
                d.start.ticks(),
                d.finish.ticks(),
            ));
        });
        out
    }
}

fn stream_sources() -> Vec<ClassSource> {
    (0..4u8)
        .map(|c| {
            ClassSource::new(
                c,
                IatDist::paper_pareto(600.0 * (c as f64 + 1.0)).expect("valid mean"),
                SizeDist::paper(),
            )
        })
        .collect()
}

/// Stage 3: both kinds through the streaming `MergedStream` replay path
/// (monomorphized), on four heterogeneous Pareto sources derived from
/// `seed`; departure records must be identical.
pub fn stream_diff(
    bespoke: SchedulerKind,
    rank: SchedulerKind,
    sdp: &Sdp,
    seed: u64,
) -> Result<(), RankDivergence> {
    let horizon = Time::from_ticks(200_000);
    let b = bespoke.build_and_visit(
        sdp,
        1.0,
        StreamDeps {
            sources: stream_sources(),
            seed,
            horizon,
        },
    );
    let r = rank.build_and_visit(
        sdp,
        1.0,
        StreamDeps {
            sources: stream_sources(),
            seed,
            horizon,
        },
    );
    if b != r {
        let first = b
            .iter()
            .zip(&r)
            .position(|(x, y)| x != y)
            .unwrap_or(b.len().min(r.len()));
        return Err(divergence(
            bespoke,
            rank,
            "streaming replay",
            first,
            format!(
                "bespoke {:?}, rank core {:?} (counts {} vs {})",
                b.get(first),
                r.get(first),
                b.len(),
                r.len()
            ),
        ));
    }
    Ok(())
}

/// Runs all three stages for one twin pair on one workload. Also verifies
/// the trace consumed by stage 2 is well-formed (time-sorted) before
/// replaying.
pub fn diff_pair(
    bespoke: SchedulerKind,
    rank: SchedulerKind,
    sdp: &Sdp,
    arrivals: &[Arrival],
    rate: f64,
    seed: u64,
) -> Result<(), RankDivergence> {
    lockstep_diff(bespoke, rank, sdp, arrivals, rate)?;
    replay_diff(bespoke, rank, sdp, arrivals, rate)?;
    stream_diff(bespoke, rank, sdp, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{overloaded_arrivals, uniform_overloaded_arrivals};

    #[test]
    fn six_twin_pairs_exist() {
        let p = pairs();
        assert_eq!(p.len(), 6);
        assert!(p
            .iter()
            .all(|(b, r)| matches!(r, SchedulerKind::Pifo(_))
                && !matches!(b, SchedulerKind::Pifo(_))));
        // LSTF is rank-only.
        assert!(RankKind::Lstf.bespoke_twin().is_none());
    }

    #[test]
    #[cfg_attr(
        feature = "mutated",
        ignore = "the bespoke WTP tie-break is deliberately mutated"
    )]
    #[cfg_attr(
        feature = "mutated-pifo",
        ignore = "the rank-core tie-break is deliberately mutated"
    )]
    fn every_twin_is_bit_identical_on_overload() {
        let sdp = Sdp::paper_default();
        for seed in 0..4 {
            // Tie-rich overload: same-tick batches across classes.
            let arrivals = overloaded_arrivals(seed, 300);
            for (b, r) in pairs() {
                diff_pair(b, r, &sdp, &arrivals, 1.0, seed)
                    .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            }
        }
    }

    #[test]
    #[cfg_attr(
        feature = "mutated",
        ignore = "the bespoke WTP tie-break is deliberately mutated"
    )]
    #[cfg_attr(
        feature = "mutated-pifo",
        ignore = "the rank-core tie-break is deliberately mutated"
    )]
    fn every_twin_is_bit_identical_on_uniform_ties() {
        // Uniform sizes maximize exact priority collisions.
        let sdp = Sdp::paper_default();
        for seed in 0..4 {
            let arrivals = uniform_overloaded_arrivals(seed, 300);
            for (b, r) in pairs() {
                diff_pair(b, r, &sdp, &arrivals, 1.0, seed)
                    .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
            }
        }
    }

    #[test]
    #[cfg_attr(
        feature = "mutated",
        ignore = "the bespoke WTP tie-break is deliberately mutated"
    )]
    #[cfg_attr(
        feature = "mutated-pifo",
        ignore = "the rank-core tie-break is deliberately mutated"
    )]
    fn wtp_peek_winner_lockstep_is_clean() {
        let sdp = Sdp::paper_default();
        for seed in 0..4 {
            lockstep_peek_wtp(&sdp, &overloaded_arrivals(seed, 300), 1.0)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    #[cfg(feature = "mutated-pifo")]
    fn seeded_rank_mutation_is_caught() {
        // The flipped tie-break must surface as a divergence on a
        // tie-rich workload, through the lockstep stage.
        let sdp = Sdp::paper_default();
        let caught = (0..4).any(|seed| {
            let arrivals = uniform_overloaded_arrivals(seed, 300);
            pairs()
                .iter()
                .any(|&(b, r)| diff_pair(b, r, &sdp, &arrivals, 1.0, seed).is_err())
        });
        assert!(caught, "rank_diff failed to catch mutate-pifo-rank");
    }

    #[test]
    fn divergence_display_names_both_schedulers() {
        let d = divergence(
            SchedulerKind::Wtp,
            SchedulerKind::Pifo(RankKind::Wtp),
            "trace replay",
            7,
            "example".into(),
        );
        let msg = d.to_string();
        assert!(msg.contains("WTP") && msg.contains("PIFO(WTP)") && msg.contains("#7"));
    }
}
