//! Proposition 1: packetized BPR tracks the fluid BPR server.
//!
//! The paper's Appendix 3 argument is that the packetized scheduler
//! (serve the class whose head is *closest to finishing* under the fluid
//! rates, i.e. `argmin(L_i − v_i)`) never lets any class's cumulative
//! service drift more than one maximum packet from the exact fluid server
//! of Eq. (8)–(9). This module measures that drift directly: it replays a
//! workload through the production [`sched::Bpr`] via `qsim::Session::trace`,
//! co-simulates [`sched::FluidBpr`] over the same arrival impulses, and
//! compares per-class **cumulative served bytes** at every packet finish
//! instant.
//!
//! The packetized scheduler holds its fluid-rate snapshot constant between
//! decision instants while the true fluid rates drift continuously. That
//! snapshot error mean-reverts only when busy periods **drain**: at every
//! idle instant both servers have served exactly what arrived, so the lag
//! reconciles to zero. Within a draining busy period the lag saturates at
//! ~2–2.6 max packets regardless of trace length (measured over 20 seeds
//! at ρ ∈ [0.7, 0.95] and 300–4800 packets), which is what
//! [`PROP1_LAG_FACTOR`] bounds. Under *sustained* overload the busy
//! period never ends and the snapshot error random-walks without a
//! restoring force (~1.8 max packets at 150 packets growing to ~6.3 at
//! 2400), so the bound is checked on loaded-but-stable workloads
//! ([`crate::loaded_arrivals`]) — Proposition 1's own regime — while the
//! end-of-trace reconciliation check holds even after overload.

use sched::{FluidBpr, Sdp};

use crate::{max_packet_bytes, replay, Arrival};

/// Allowed per-class service lag, in units of the workload's maximum
/// packet size, on workloads whose busy periods drain. Proposition 1's
/// asymptotic bound is one packet of transmission granularity; the
/// constant-rate-between-departures approximation of the packetized
/// implementation costs roughly another 1.5 packets within a busy period
/// (measured worst case 2.58 across load sweeps — see the module docs).
pub const PROP1_LAG_FACTOR: f64 = 3.0;

/// The measured drift between packetized and fluid BPR on one workload.
#[derive(Debug, Clone)]
pub struct LagReport {
    /// Largest |served_pkt − served_fluid| over classes and checkpoints.
    pub max_lag_bytes: f64,
    /// The class attaining it.
    pub class: usize,
    /// The finish instant (ticks) where it occurred.
    pub at: u64,
    /// The workload's maximum packet size.
    pub max_packet: u32,
    /// Largest per-class lag at the *final* checkpoint. Both servers are
    /// work-conserving on the same arrivals, so once the packetized run
    /// transmits its last byte the fluid server has drained too — this
    /// must be float-noise regardless of load (busy-period
    /// reconciliation).
    pub end_lag_bytes: f64,
}

impl LagReport {
    /// True when the lag is within [`PROP1_LAG_FACTOR`] max-packets.
    pub fn within_bound(&self) -> bool {
        self.max_lag_bytes <= PROP1_LAG_FACTOR * self.max_packet as f64 + 1e-6
    }
}

/// Measures the maximum per-class service lag of packetized BPR behind
/// the exact fluid server on `arrivals` at `rate` bytes/tick.
///
/// Checkpoints are the packetized departure finish instants; the fluid
/// server is advanced with its exact closed-form solution between events,
/// so there is no integration error in the reference.
pub fn bpr_service_lag(sdp: &Sdp, arrivals: &[Arrival], rate: f64) -> LagReport {
    let n = sdp.num_classes();
    let deps = replay(sched::SchedulerKind::Bpr, sdp, arrivals, rate);

    // Cumulative packetized service per class, keyed by finish instant.
    let mut served_pkt = vec![0.0f64; n];
    // Arrival impulses consumed in time order alongside departures.
    let mut arr_iter = arrivals.iter().copied().peekable();
    let mut fluid = FluidBpr::new(sdp.clone(), rate);
    let mut fluid_added = vec![0.0f64; n];
    let mut fluid_now = 0.0f64;

    let mut report = LagReport {
        max_lag_bytes: 0.0,
        class: 0,
        at: 0,
        max_packet: max_packet_bytes(arrivals),
        end_lag_bytes: 0.0,
    };

    for d in &deps {
        // Feed the fluid server every arrival up to (and including) this
        // departure's finish instant, advancing exactly between impulses.
        while let Some(&(t, c, sz)) = arr_iter.peek() {
            if t as f64 > d.finish as f64 {
                break;
            }
            arr_iter.next();
            fluid.advance(t as f64 - fluid_now);
            fluid_now = t as f64;
            fluid.add(c as usize, sz as f64);
            fluid_added[c as usize] += sz as f64;
        }
        fluid.advance(d.finish as f64 - fluid_now);
        fluid_now = d.finish as f64;

        served_pkt[d.class as usize] += d.size as f64;
        let mut end_lag = 0.0f64;
        for c in 0..n {
            let served_fluid = fluid_added[c] - fluid.backlogs()[c];
            let lag = (served_pkt[c] - served_fluid).abs();
            if lag > report.max_lag_bytes {
                report.max_lag_bytes = lag;
                report.class = c;
                report.at = d.finish;
            }
            end_lag = end_lag.max(lag);
        }
        report.end_lag_bytes = end_lag;
    }
    report
}

/// The Proposition-1 conformance check: fails with a description when the
/// packetized scheduler drifts more than [`PROP1_LAG_FACTOR`] max-packets
/// from the fluid server, or when the lag fails to reconcile by the end
/// of the trace. Meaningful on workloads whose busy periods drain (see
/// the module docs); the suite feeds it [`crate::loaded_arrivals`].
pub fn check_proposition_1(sdp: &Sdp, arrivals: &[Arrival], rate: f64) -> Result<(), String> {
    let report = bpr_service_lag(sdp, arrivals, rate);
    if !report.within_bound() {
        return Err(format!(
            "BPR service lag {:.1} bytes (class {}, t={}) exceeds {} × max packet ({} bytes)",
            report.max_lag_bytes, report.class, report.at, PROP1_LAG_FACTOR, report.max_packet
        ));
    }
    // Work conservation forces both servers to drain at the same instant,
    // so the final checkpoint's lag is pure float noise.
    if report.end_lag_bytes > 1e-3 {
        return Err(format!(
            "BPR lag failed to reconcile at end of trace: {} bytes still unaccounted",
            report.end_lag_bytes
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{loaded_arrivals, overloaded_arrivals};

    #[test]
    fn single_backlogged_class_has_sub_packet_lag() {
        // One class only: packetized and fluid both serve at full rate, so
        // the lag is just transmission granularity — under one packet.
        let sdp = Sdp::paper_default();
        let arrivals: Vec<Arrival> = (0..50).map(|k| (k * 10, 0u8, 500u32)).collect();
        let report = bpr_service_lag(&sdp, &arrivals, 1.0);
        assert!(
            report.max_lag_bytes <= report.max_packet as f64 + 1e-6,
            "lag {} for single class",
            report.max_lag_bytes
        );
    }

    #[test]
    fn lag_stays_bounded_at_draining_load() {
        // ρ = 0.9 with Poisson gaps: busy periods keep draining, so the
        // lag saturates well under the bound for any trace length.
        let sdp = Sdp::paper_default();
        for seed in 0..20 {
            let arrivals = loaded_arrivals(seed, 600, 0.9);
            check_proposition_1(&sdp, &arrivals, 1.0)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn lag_reconciles_at_end_even_after_overload() {
        // Sustained overload makes the within-trace lag drift (one giant
        // busy period, no restoring force), but once the backlog finally
        // drains both servers must agree to float noise.
        let sdp = Sdp::paper_default();
        for seed in 0..10 {
            let report = bpr_service_lag(&sdp, &overloaded_arrivals(seed, 300), 1.0);
            assert!(
                report.end_lag_bytes <= 1e-3,
                "seed {seed}: end lag {} bytes",
                report.end_lag_bytes
            );
        }
    }

    #[test]
    fn empty_workload_has_zero_lag() {
        let report = bpr_service_lag(&Sdp::paper_default(), &[], 1.0);
        assert_eq!(report.max_lag_bytes, 0.0);
    }
}
