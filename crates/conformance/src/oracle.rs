//! Oracle differentials: a from-scratch WTP reference diffed against the
//! production scheduler, and the Eq. (7) feasibility witness check.
//!
//! The oracle deliberately shares **no code** with `sched::wtp` or the
//! `qsim` replay loop: it keeps its own per-class FIFO queues, recomputes
//! every backlogged class's priority `w_i(t)·s_i` from scratch at each
//! decision instant, and applies the paper's rules directly — highest
//! priority wins, ties to the higher class, arrivals at a decision instant
//! are admitted before the decision, transmission takes
//! `max(1, round(size/rate))` ticks. Any divergence in who is served when
//! is a conformance failure, reported per decision instant.

use std::collections::VecDeque;
use std::fmt;

use sched::{Scheduler, SchedulerKind, Sdp, Wtp};
use simcore::Time;

use crate::{class_mean_waits, replay, Arrival, Dep};

/// Transmission ticks for `size` bytes at `rate` bytes/tick (the model's
/// at-least-one-tick rule, restated independently of `qsim`).
pub(crate) fn tx_ticks(size: u32, rate: f64) -> u64 {
    ((size as f64 / rate).round() as u64).max(1)
}

/// The brute-force WTP reference: per-class FIFOs and nothing else.
#[derive(Debug, Clone)]
pub struct WtpOracle {
    queues: Vec<VecDeque<(u64, u64, u32)>>, // (seq, arrival_tick, size)
    sdps: Vec<f64>,
}

impl WtpOracle {
    /// Creates an oracle for the given SDPs.
    pub fn new(sdp: &Sdp) -> Self {
        WtpOracle {
            queues: vec![VecDeque::new(); sdp.num_classes()],
            sdps: (0..sdp.num_classes()).map(|c| sdp.get(c)).collect(),
        }
    }

    /// Admits one packet.
    pub fn enqueue(&mut self, seq: u64, class: u8, size: u32, arrival: u64) {
        self.queues[class as usize].push_back((seq, arrival, size));
    }

    /// True when no packet is queued.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// The winning class at tick `now`: maximum head-of-line
    /// `waiting · sdp`, ties to the **higher** class. Scans from the
    /// highest class down and replaces only on strictly greater priority,
    /// so the tie rule is structural, not numeric.
    pub fn winner(&self, now: u64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in (0..self.queues.len()).rev() {
            let Some(&(_, arrival, _)) = self.queues[c].front() else {
                continue;
            };
            let p = now.saturating_sub(arrival) as f64 * self.sdps[c];
            match best {
                Some((_, bp)) if p <= bp => {}
                _ => best = Some((c, p)),
            }
        }
        best.map(|(c, _)| c)
    }

    /// Serves the winning class's head packet at tick `now`.
    pub fn dequeue(&mut self, now: u64) -> Option<(u64, u64, u32, usize)> {
        let c = self.winner(now)?;
        let (seq, arrival, size) = self.queues[c].pop_front().expect("winner is backlogged");
        Some((seq, arrival, size, c))
    }
}

/// Replays `arrivals` through the oracle on a `rate` bytes/tick link.
pub fn oracle_replay(sdp: &Sdp, arrivals: &[Arrival], rate: f64) -> Vec<Dep> {
    let mut oracle = WtpOracle::new(sdp);
    let mut out = Vec::with_capacity(arrivals.len());
    let mut next = 0usize;
    let mut free = 0u64;
    let mut seq = 0u64;
    loop {
        if oracle.is_empty() {
            if next >= arrivals.len() {
                break;
            }
            let (t, c, sz) = arrivals[next];
            next += 1;
            oracle.enqueue(seq, c, sz, t);
            seq += 1;
            free = free.max(t);
        }
        while next < arrivals.len() && arrivals[next].0 <= free {
            let (t, c, sz) = arrivals[next];
            next += 1;
            oracle.enqueue(seq, c, sz, t);
            seq += 1;
        }
        let (pseq, arrival, size, class) = oracle.dequeue(free).expect("backlogged");
        let finish = free + tx_ticks(size, rate);
        out.push(Dep {
            seq: pseq,
            class: class as u8,
            size,
            arrival,
            start: free,
            finish,
        });
        free = finish;
    }
    out
}

/// How many trailing decision-audit records a [`Divergence`] carries.
pub const AUDIT_TAIL: usize = 8;

/// One decision-audit record from the production scheduler: what
/// [`Scheduler::decision_values`] reported at a decision instant, and who
/// won. This is the same audit stream the telemetry probes export; keeping
/// the tail of it in the divergence report turns "packet 4711 went the
/// wrong way" into "here are the head priorities for the 8 decisions
/// leading up to it".
#[derive(Debug, Clone)]
pub struct AuditRecord {
    /// Index in the departure sequence (0-based decision number).
    pub index: usize,
    /// Decision instant in ticks.
    pub at: u64,
    /// Class the production scheduler served.
    pub winner: u8,
    /// `(class, priority)` per backlogged class, in class order.
    pub values: Vec<(usize, f64)>,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "  #{} t={} winner=class {}: values {:?}",
            self.index,
            self.at,
            self.winner + 1,
            self.values
        )
    }
}

/// A divergence between the production WTP and the oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index in the departure sequence where the paths first disagree.
    pub index: usize,
    /// What the oracle served at that decision instant.
    pub oracle: Option<Dep>,
    /// What the production scheduler served.
    pub system: Option<Dep>,
    /// Which comparison caught it.
    pub stage: &'static str,
    /// The last [`AUDIT_TAIL`] decision-audit records from the manual
    /// drive, oldest first. For decision-instant and manual-drive
    /// divergences these are the decisions immediately preceding the
    /// failure; for the replay stages (where the manual drive
    /// completed cleanly) they are the tail of the whole run.
    pub audit: Vec<AuditRecord>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WTP diverges from oracle at departure #{} [{}]: oracle served {:?}, system served {:?}",
            self.index, self.stage, self.oracle, self.system
        )?;
        if !self.audit.is_empty() {
            write!(f, "\nlast {} decision-audit records:", self.audit.len())?;
            for rec in &self.audit {
                write!(f, "\n{rec}")?;
            }
        }
        Ok(())
    }
}

/// Diffs `sched::wtp` against the oracle on one workload, at three levels:
///
/// 1. **decision instants** — a manual drive of the concrete [`Wtp`]
///    checks [`Wtp::peek_winner`] against [`WtpOracle::winner`] at every
///    service decision *before* dequeuing;
/// 2. **departure sequence** — the `(seq, class, start)` record of that
///    drive must equal the oracle's;
/// 3. **replay path** — the production `qsim::Session::trace` path must produce
///    the same record, so the dyn-dispatch loop is covered too.
///
/// The `Err` variant is deliberately fat (it carries the audit tail): it
/// exists to be printed once on failure, never on a hot path.
#[allow(clippy::result_large_err)]
pub fn diff_wtp(sdp: &Sdp, arrivals: &[Arrival], rate: f64) -> Result<(), Divergence> {
    debug_assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
    let oracle_deps = oracle_replay(sdp, arrivals, rate);

    // Manual drive of the concrete scheduler, peeking at each decision.
    // The ring buffer keeps the last few decision audits so a divergence
    // report shows *why* the scheduler chose as it did, not just that the
    // choice differed.
    let mut wtp = Wtp::new(sdp.clone());
    let mut oracle = WtpOracle::new(sdp);
    let mut next = 0usize;
    let mut free = 0u64;
    let mut seq = 0u64;
    let mut index = 0usize;
    let mut audit: VecDeque<AuditRecord> = VecDeque::with_capacity(AUDIT_TAIL);
    let mut scratch: Vec<(usize, f64)> = Vec::new();
    loop {
        if wtp.total_backlog_packets() == 0 {
            if next >= arrivals.len() {
                break;
            }
            let (t, c, sz) = arrivals[next];
            next += 1;
            wtp.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            oracle.enqueue(seq, c, sz, t);
            seq += 1;
            free = free.max(t);
        }
        while next < arrivals.len() && arrivals[next].0 <= free {
            let (t, c, sz) = arrivals[next];
            next += 1;
            wtp.enqueue(sched::Packet::new(seq, c, sz, Time::from_ticks(t)));
            oracle.enqueue(seq, c, sz, t);
            seq += 1;
        }
        scratch.clear();
        wtp.decision_values(Time::from_ticks(free), &mut scratch);
        let peeked = wtp.peek_winner(Time::from_ticks(free));
        if audit.len() == AUDIT_TAIL {
            audit.pop_front();
        }
        audit.push_back(AuditRecord {
            index,
            at: free,
            winner: peeked.unwrap_or(usize::MAX) as u8,
            values: scratch.clone(),
        });
        let expected = oracle.winner(free);
        if peeked != expected {
            return Err(Divergence {
                index,
                oracle: expected.map(|c| placeholder_dep(c, free)),
                system: peeked.map(|c| placeholder_dep(c, free)),
                stage: "decision instant (peek_winner)",
                audit: audit.into(),
            });
        }
        let pkt = wtp
            .dequeue(Time::from_ticks(free))
            .expect("backlogged WTP must serve");
        audit.back_mut().expect("just pushed").winner = pkt.class;
        oracle.dequeue(free);
        let od = oracle_deps[index];
        if (pkt.seq, pkt.class, free) != (od.seq, od.class, od.start) {
            return Err(Divergence {
                index,
                oracle: Some(od),
                system: Some(Dep {
                    seq: pkt.seq,
                    class: pkt.class,
                    size: pkt.size,
                    arrival: pkt.arrival.ticks(),
                    start: free,
                    finish: free + tx_ticks(pkt.size, rate),
                }),
                stage: "departure sequence (manual drive)",
                audit: audit.into(),
            });
        }
        free += tx_ticks(pkt.size, rate);
        index += 1;
    }

    // Production replay path (Session::trace + Box<dyn Scheduler>).
    let system_deps = replay(SchedulerKind::Wtp, sdp, arrivals, rate);
    for (i, (s, o)) in system_deps.iter().zip(&oracle_deps).enumerate() {
        if (s.seq, s.class, s.start) != (o.seq, o.class, o.start) {
            return Err(Divergence {
                index: i,
                oracle: Some(*o),
                system: Some(*s),
                stage: "departure sequence (trace replay)",
                audit: audit.iter().cloned().collect(),
            });
        }
    }
    if system_deps.len() != oracle_deps.len() {
        return Err(Divergence {
            index: system_deps.len().min(oracle_deps.len()),
            oracle: oracle_deps.get(system_deps.len()).copied(),
            system: system_deps.get(oracle_deps.len()).copied(),
            stage: "departure count",
            audit: audit.into(),
        });
    }
    Ok(())
}

/// A synthetic [`Dep`] standing in for "class c would be served at t" in
/// decision-instant divergences, where no packet has departed yet.
fn placeholder_dep(class: usize, now: u64) -> Dep {
    Dep {
        seq: u64::MAX,
        class: class as u8,
        size: 0,
        arrival: 0,
        start: now,
        finish: now,
    }
}

/// The Eq. (7) feasibility witness check: the per-class mean delays a
/// work-conserving scheduler **achieves** on a trace are, by construction,
/// a feasible operating point — so `stats::check_feasibility` must accept
/// them. Run at `rate = 1.0`, where the integer-tick replay and the
/// float FCFS reference in `stats` agree exactly.
///
/// Callers must feed **uniform-packet-size** workloads (e.g.
/// [`crate::uniform_overloaded_arrivals`]): `stats` weighs the constraint
/// Σ λ_φ·d̄_φ by packet rates, which equals the byte-weighted quantity Eq.
/// 5 actually conserves only when every packet is the same size. With
/// mixed sizes a scheduler whose waits correlate with sizes legitimately
/// leaves the packet-weighted region (strict priority under the paper's
/// size mix sits ~12% below the full-set bound) — that is not a bug, so
/// the witness would be vacuously noisy there.
pub fn feasibility_witness(
    kind: SchedulerKind,
    sdp: &Sdp,
    arrivals: &[Arrival],
) -> Result<(), String> {
    if arrivals.is_empty() {
        return Ok(());
    }
    let deps = replay(kind, sdp, arrivals, 1.0);
    let achieved = class_mean_waits(&deps, sdp.num_classes());
    let report = stats::check_feasibility(arrivals, 1.0, &achieved);
    if report.feasible() {
        Ok(())
    } else {
        Err(format!(
            "{}'s achieved delays {achieved:?} rejected by Eq. (7): {report}",
            kind.name()
        ))
    }
}

/// Sanity net for the harness itself: the oracle replay must match the
/// metadata of the trace it was given (lossless, causal, class-FIFO).
pub fn oracle_self_check(sdp: &Sdp, arrivals: &[Arrival]) -> Result<(), String> {
    let deps = oracle_replay(sdp, arrivals, 1.0);
    if deps.len() != arrivals.len() {
        return Err(format!(
            "oracle lost packets: {} of {}",
            deps.len(),
            arrivals.len()
        ));
    }
    for d in &deps {
        if d.start < d.arrival {
            return Err(format!("oracle served before arrival: {d:?}"));
        }
    }
    for c in 0..sdp.num_classes() as u8 {
        let seqs: Vec<u64> = deps
            .iter()
            .filter(|d| d.class == c)
            .map(|d| d.seq)
            .collect();
        if !seqs.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("oracle violated FIFO within class {c}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overloaded_arrivals;

    #[test]
    fn oracle_serves_higher_class_on_zero_wait_tie() {
        let sdp = Sdp::paper_default();
        let deps = oracle_replay(&sdp, &[(5, 0, 100), (5, 2, 100), (5, 1, 100)], 1.0);
        // All three arrive together into an empty system: priorities are
        // all zero, so the tie rule alone decides — highest class first.
        let classes: Vec<u8> = deps.iter().map(|d| d.class).collect();
        assert_eq!(classes, vec![2, 1, 0]);
    }

    #[test]
    fn oracle_lets_long_waiting_low_class_overtake() {
        let sdp = Sdp::new(&[1.0, 2.0]).unwrap();
        // Class 0 waits 30 ticks (priority 30) vs class 1's 10·2 = 20.
        let deps = oracle_replay(&sdp, &[(0, 0, 100), (0, 0, 100), (80, 1, 100)], 1.0);
        assert_eq!(deps[1].class, 0);
    }

    #[test]
    fn idle_gaps_reset_the_oracle_clock() {
        let sdp = Sdp::paper_default();
        let deps = oracle_replay(&sdp, &[(0, 0, 50), (500, 1, 50)], 1.0);
        assert_eq!(deps[0].start, 0);
        assert_eq!(deps[1].start, 500);
    }

    #[test]
    #[cfg_attr(
        feature = "mutated",
        ignore = "diff intentionally fails under the seeded mutation"
    )]
    fn production_wtp_matches_oracle_on_random_overload() {
        let sdp = Sdp::paper_default();
        for seed in 0..20 {
            let arrivals = overloaded_arrivals(seed, 300);
            diff_wtp(&sdp, &arrivals, 1.0).unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        }
    }

    #[test]
    #[cfg(feature = "mutated")]
    fn mutation_is_detected_by_the_oracle_diff() {
        // Non-vacuity: with the tie-break flip compiled in, the very first
        // zero-wait tie must diverge.
        let sdp = Sdp::paper_default();
        let err = diff_wtp(&sdp, &[(0, 0, 100), (0, 1, 100)], 1.0)
            .expect_err("flipped tie-break must be caught");
        assert_eq!(err.index, 0, "{err}");
    }

    #[test]
    fn achieved_delays_are_feasible_for_every_scheduler() {
        let sdp = Sdp::paper_default();
        let arrivals = crate::uniform_overloaded_arrivals(11, 250);
        for kind in SchedulerKind::ALL {
            feasibility_witness(kind, &sdp, &arrivals).unwrap();
        }
    }

    #[test]
    fn divergence_report_dumps_the_audit_tail() {
        let d = Divergence {
            index: 12,
            oracle: None,
            system: None,
            stage: "decision instant (peek_winner)",
            audit: vec![
                AuditRecord {
                    index: 11,
                    at: 4000,
                    winner: 2,
                    values: vec![(0, 120.0), (2, 90.0)],
                },
                AuditRecord {
                    index: 12,
                    at: 4100,
                    winner: 0,
                    values: vec![(0, 220.0), (2, 15.0)],
                },
            ],
        };
        let text = d.to_string();
        assert!(text.contains("last 2 decision-audit records"), "{text}");
        assert!(text.contains("#11 t=4000 winner=class 3"), "{text}");
        assert!(text.contains("(0, 220.0)"), "{text}");
    }

    #[cfg(feature = "mutated")]
    #[test]
    fn mutated_divergence_carries_audit_records() {
        let sdp = Sdp::paper_default();
        let err = diff_wtp(&sdp, &[(0, 0, 100), (0, 1, 100)], 1.0)
            .expect_err("flipped tie-break must be caught");
        assert!(!err.audit.is_empty(), "divergence should carry audit tail");
        assert!(err.to_string().contains("decision-audit"), "{err}");
    }

    #[test]
    fn oracle_self_check_passes() {
        let sdp = Sdp::paper_default();
        oracle_self_check(&sdp, &overloaded_arrivals(2, 200)).unwrap();
        oracle_self_check(&sdp, &[]).unwrap();
    }
}
