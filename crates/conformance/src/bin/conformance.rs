//! The conformance suite runner / mutation smoke-runner.
//!
//! ```text
//! conformance [--seeds N] [--expect-detect]
//! ```
//!
//! Runs every named check over seeds `0..N` (default 5). Exit code 0 means
//! the suite passed. With `--expect-detect` the polarity flips: the run
//! succeeds only if at least one check FAILS — that mode, combined with
//! building against `--features mutated` (which flips WTP's tie-break in
//! `sched`) or `--features mutated-pifo` (which flips the rank core's
//! tie-break), is the proof that the harness is non-vacuous. CI runs all
//! polarities.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seeds = 5u64;
    let mut expect_detect = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seeds needs a number"));
            }
            "--expect-detect" => expect_detect = true,
            "--help" | "-h" => {
                println!("usage: conformance [--seeds N] [--expect-detect]");
                return ExitCode::SUCCESS;
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }

    let mutated = if cfg!(feature = "mutated") {
        " [MUTATED build: sched/mutate-wtp-tiebreak active]"
    } else if cfg!(feature = "mutated-pifo") {
        " [MUTATED build: sched/mutate-pifo-rank active]"
    } else {
        ""
    };
    println!("conformance suite: {seeds} seed(s) per check{mutated}");

    let failures = conformance::suite::run_suite(seeds, |_, _, _| {});

    for f in &failures {
        println!("FAIL  {} (seed {}): {}", f.check, f.seed, f.message);
    }
    for check in conformance::suite::all_checks() {
        let n_failed = failures.iter().filter(|f| f.check == check.name).count();
        println!(
            "{}  {}",
            if n_failed == 0 { "PASS" } else { "FAIL" },
            check.name
        );
    }

    if expect_detect {
        if failures.is_empty() {
            println!("expected the suite to detect a defect, but every check passed — the harness is vacuous for this build");
            ExitCode::FAILURE
        } else {
            println!(
                "defect detected by {} check run(s) — harness is live",
                failures.len()
            );
            ExitCode::SUCCESS
        }
    } else if failures.is_empty() {
        println!("all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("{} check run(s) failed", failures.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}\nusage: conformance [--seeds N] [--expect-detect]");
    std::process::exit(2);
}
