//! Decomposition conformance: the link-level decomposition engine
//! (`netsim::decompose`) judged against the exact mesh engine
//! (`netsim::Session::mesh`) on small fabrics, plus the structural laws
//! the orchestrator's `mesh` suite rests on.
//!
//! Four layers, ordered from theorem to tolerance:
//!
//! * **Packet conservation** — both engines are lossless and replicate
//!   the same per-flow emission schedules, so every link must transmit
//!   *exactly* the same packet count under either engine, at any load.
//!   This is an exact differential, not an approximation check.
//! * **ECMP route oracle** — a from-scratch reimplementation of the
//!   route-hash contract (own BFS, own candidate filter, the documented
//!   `splitmix64(splitmix64(seed ^ flow_id) ^ node)` pick) diffed against
//!   `Topology::route` path-by-path, plus path-validity invariants.
//! * **Schedule invariance** — link reports computed in any shard
//!   partition compose bit-identically to the serial run; this is the
//!   transport law the multi-process farm relies on.
//! * **End-to-end tolerance** — the decomposition ignores upstream
//!   queueing (a packet arrives at hop *h* as if all upstream queues were
//!   empty), so congested fabrics diverge from the exact engine: the
//!   un-paced schedule hits every downstream hop at once, over-counting
//!   contention. The bound is `rel · exact + hops · tx_max`: a relative
//!   term plus **one max-packet transmission time per route hop** of
//!   absolute slack (the same per-hop quantum `netsim::analysis` uses for
//!   Study-B consistency). At moderate load (busiest link ≈ 0.7) the
//!   per-class mean waits are themselves sub-quantum, so the absolute
//!   term is the operative one — measured drift across 24 seeded
//!   scenarios peaks at ≈ 0.31 of that per-hop budget — while the
//!   relative term ([`E2E_REL_TOLERANCE`]) is headroom for regimes where
//!   queueing dominates transmission. The quantum also absorbs the
//!   tie-semantics gap (at *simultaneous* arrivals on an idle link the
//!   exact engine starts transmitting the first arrival while the
//!   single-link replay batches the tie before deciding).

use netsim::decompose::{DecomposeInput, LinkReport};
use netsim::mesh::{FlowModel, MeshConfig};
use netsim::topology::splitmix64;
use netsim::{HostFlow, LinkSpec, Session, Topology, TopologyConfig};
use sched::{RankKind, SchedulerKind, Sdp};

/// Relative term of the end-to-end tolerance (decomposed vs exact class
/// mean waits). See the module docs: at moderate load the absolute
/// per-hop packet quantum is the operative bound and this term adds
/// headroom for heavily queued regimes.
pub const E2E_REL_TOLERANCE: f64 = 0.25;

/// Schedulers the scenario generator cycles through — the same set the
/// orchestrator's mesh suite runs, so the conformance net covers exactly
/// the production configurations.
pub const SCENARIO_SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Wtp,
    SchedulerKind::Hpd,
    SchedulerKind::Pifo(RankKind::Wtp),
];

/// A seeded small leaf-spine scenario lowered to a [`MeshConfig`]:
/// 2–3 leaves × 1–2 spines × 2 hosts each, 8–13 periodic host flows with
/// paper-class labels. The emission gap is normalized in a second pass so
/// the **busiest link's** offered load sits exactly at `rho` — routing is
/// gap-independent, so the trial lowering and the final one route
/// identically.
///
/// Everything — fabric shape, scheduler, endpoints, phases — derives from
/// `seed` via `splitmix64`, so a failure report `(check, seed)` names the
/// scenario completely.
pub fn scenario(seed: u64, rho: f64) -> MeshConfig {
    let key = splitmix64(seed ^ 0xDEC0_0001);
    let kind = SCENARIO_SCHEDULERS[(key % 3) as usize];
    let spec = LinkSpec::new(25_000_000.0, kind);
    let leaves = 2 + (splitmix64(key ^ 1) % 2) as usize;
    let spines = 1 + (splitmix64(key ^ 2) % 2) as usize;
    let topology = Topology::leaf_spine(leaves, spines, 2, &spec).expect("valid dims");
    let hosts = topology.hosts();
    let n_flows = 8 + (splitmix64(key ^ 3) % 6) as usize;
    let lower = |gap: u64| -> MeshConfig {
        let flows = (0..n_flows)
            .map(|i| {
                let fk = splitmix64(key ^ (0x100 + i as u64));
                let src = hosts[(fk % hosts.len() as u64) as usize];
                let hop = 1 + splitmix64(fk) % (hosts.len() as u64 - 1);
                let dst = hosts[((fk + hop) % hosts.len() as u64) as usize];
                HostFlow {
                    src,
                    dst,
                    class: (i % 4) as u8,
                    packet_bytes: 500,
                    model: FlowModel::Periodic {
                        gap_ticks: gap,
                        count: 30,
                    },
                    // Staggered phases spread ties without forbidding them.
                    start_ticks: splitmix64(fk ^ 0xAB) % gap,
                }
            })
            .collect();
        TopologyConfig {
            topology: topology.clone(),
            sdp: Sdp::paper_default(),
            flows,
            seed,
            cross_horizon_ticks: 0,
        }
        .to_mesh()
        .expect("scenario lowers")
    };
    // Trial lowering at a reference gap to find the busiest link, then
    // rescale the gap so that link's offered load is exactly `rho`.
    const REF_GAP: u64 = 1_000_000;
    let trial = lower(REF_GAP);
    let mut load = vec![0.0f64; trial.links.len()];
    for f in &trial.flows {
        for &l in &f.route {
            load[l] += f.packet_bytes as f64 / REF_GAP as f64 / trial.links[l].bytes_per_tick();
        }
    }
    let peak = load.iter().copied().fold(0.0f64, f64::max);
    lower((REF_GAP as f64 * peak / rho).round() as u64)
}

/// Packet conservation: exact and decomposed engines must transmit the
/// same packet count on every link and the same per-flow totals — at any
/// load, exactly.
pub fn packet_conservation(cfg: &MeshConfig) -> Result<(), String> {
    let exact = Session::mesh(cfg).run();
    let dec = DecomposeInput::new(cfg)?.run();
    if exact.link_departures != dec.link_departures {
        return Err(format!(
            "link departures diverged: exact {:?} vs decomposed {:?}",
            exact.link_departures, dec.link_departures
        ));
    }
    for f in 0..cfg.flows.len() {
        let e = exact.per_flow_waits[f].len() as u64;
        if e != dec.per_flow_packets[f] {
            return Err(format!(
                "flow {f}: exact delivered {e} packets, decomposed {}",
                dec.per_flow_packets[f]
            ));
        }
    }
    Ok(())
}

/// Per-class mean end-to-end waits agree within `rel` relative plus one
/// packet transmission time per hop of absolute slack (see module docs).
pub fn e2e_within_tolerance(cfg: &MeshConfig, rel: f64) -> Result<(), String> {
    let exact = Session::mesh(cfg).run();
    let dec = DecomposeInput::new(cfg)?.run();
    let nc = cfg.sdp.num_classes();
    // One max-packet transmission time on the slowest link, per hop of
    // the longest class route — the discretization quantum.
    let max_bytes = cfg.flows.iter().map(|f| f.packet_bytes).max().unwrap_or(0) as f64;
    let slow = cfg
        .links
        .iter()
        .map(|l| l.bytes_per_tick())
        .fold(f64::INFINITY, f64::min);
    let mut class_slack = vec![0.0f64; nc];
    for f in &cfg.flows {
        let c = f.class as usize;
        class_slack[c] = class_slack[c].max(f.route.len() as f64 * (max_bytes / slow).ceil());
    }
    for (c, &slack) in class_slack.iter().enumerate() {
        let (mut e_sum, mut d_sum, mut n) = (0.0, 0.0, 0u64);
        for (f, flow) in cfg.flows.iter().enumerate() {
            if flow.class as usize == c {
                e_sum += exact.mean_wait(f);
                d_sum += dec.per_flow_mean_wait[f];
                n += 1;
            }
        }
        if n == 0 {
            continue;
        }
        let (e_mean, d_mean) = (e_sum / n as f64, d_sum / n as f64);
        let bound = rel * e_mean + slack;
        if (d_mean - e_mean).abs() > bound {
            return Err(format!(
                "class {c}: exact mean e2e {e_mean:.1} vs decomposed {d_mean:.1} \
                 exceeds tolerance {bound:.1} (rel {rel}, slack {slack:.0})"
            ));
        }
    }
    Ok(())
}

/// Shard-schedule invariance: link reports computed under any round-robin
/// partition (and within each shard, in shard-local order) compose
/// bit-identically to the serial run.
pub fn shard_invariance(cfg: &MeshConfig, shard_counts: &[usize]) -> Result<(), String> {
    let input = DecomposeInput::new(cfg)?;
    let serial = input.run();
    let serial_bits: Vec<u64> = serial
        .per_flow_mean_wait
        .iter()
        .map(|x| x.to_bits())
        .collect();
    for &shards in shard_counts {
        let mut reports: Vec<Option<LinkReport>> = vec![None; input.num_links()];
        for s in 0..shards {
            for l in (s..input.num_links()).step_by(shards) {
                reports[l] = Some(input.link_report(l));
            }
        }
        let reports: Vec<LinkReport> = reports.into_iter().map(|r| r.unwrap()).collect();
        let sharded = input.compose(&reports);
        let bits: Vec<u64> = sharded
            .per_flow_mean_wait
            .iter()
            .map(|x| x.to_bits())
            .collect();
        if bits != serial_bits || sharded.link_departures != serial.link_departures {
            return Err(format!(
                "decomposition not invariant under {shards}-way sharding"
            ));
        }
        if sharded.class_hop_wait_sum != serial.class_hop_wait_sum {
            return Err(format!(
                "class wait sums drifted under {shards}-way sharding"
            ));
        }
    }
    Ok(())
}

/// From-scratch ECMP oracle: reimplements the route-hash contract with an
/// independent BFS and diffs every `(src, dst, flow_id)` path against
/// `Topology::route`, then asserts path validity (contiguity, shortest
/// length, determinism).
pub fn route_oracle(topology: &Topology, seed: u64, flow_ids: u64) -> Result<(), String> {
    // Independent BFS distances toward each destination.
    let n = topology.num_nodes();
    let links = topology.links();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (l, link) in links.iter().enumerate() {
        rev[link.dst].push(link.src);
        fwd[link.src].push(l);
    }
    let dist_to = |dst: usize| -> Vec<u32> {
        let mut d = vec![u32::MAX; n];
        d[dst] = 0;
        let mut q = std::collections::VecDeque::from([dst]);
        while let Some(v) = q.pop_front() {
            for &u in &rev[v] {
                if d[u] == u32::MAX {
                    d[u] = d[v] + 1;
                    q.push_back(u);
                }
            }
        }
        d
    };
    let routes = topology.routes();
    let hosts = topology.hosts();
    for &src in &hosts {
        for &dst in &hosts {
            if src == dst {
                continue;
            }
            let d = dist_to(dst);
            for flow_id in 0..flow_ids {
                let got = topology
                    .route(&routes, src, dst, seed, flow_id)
                    .ok_or_else(|| format!("no route {src}->{dst}"))?;
                // Oracle walk: at each node pick among ascending-link-id
                // equal-cost candidates with the documented hash.
                let key = splitmix64(seed ^ flow_id);
                let mut want = Vec::new();
                let mut node = src;
                while node != dst {
                    let mut candidates: Vec<usize> = fwd[node]
                        .iter()
                        .copied()
                        .filter(|&l| d[links[l].dst] != u32::MAX && d[links[l].dst] + 1 == d[node])
                        .collect();
                    candidates.sort_unstable();
                    let pick = candidates
                        [(splitmix64(key ^ node as u64) % candidates.len() as u64) as usize];
                    want.push(pick);
                    node = links[pick].dst;
                }
                if got != want {
                    return Err(format!(
                        "route {src}->{dst} flow {flow_id}: production {got:?} vs oracle {want:?}"
                    ));
                }
                if got.len() != d[src] as usize {
                    return Err(format!(
                        "route {src}->{dst} flow {flow_id} is not shortest: {} hops vs BFS {}",
                        got.len(),
                        d[src]
                    ));
                }
                let again = topology.route(&routes, src, dst, seed, flow_id).unwrap();
                if again != got {
                    return Err(format!(
                        "route {src}->{dst} flow {flow_id} not deterministic"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Metamorphic ×2 byte-axis dilation: doubling every link's bit rate and
/// every packet's size leaves transmission times, emission instants, and
/// therefore every wait bit-identical, in both engines. (Powers of two
/// keep the float quotient `size / bytes_per_tick` exact.)
pub fn size_rate_rescale(cfg: &MeshConfig) -> Result<(), String> {
    let mut scaled = cfg.clone();
    for l in &mut scaled.links {
        l.bps *= 2.0;
    }
    for f in &mut scaled.flows {
        f.packet_bytes *= 2;
    }
    let (base, big) = (Session::mesh(cfg).run(), Session::mesh(&scaled).run());
    if base.link_departures != big.link_departures || base.per_flow_waits != big.per_flow_waits {
        return Err("exact engine not invariant under x2 byte-axis dilation".into());
    }
    let (base, big) = (
        DecomposeInput::new(cfg)?.run(),
        DecomposeInput::new(&scaled)?.run(),
    );
    let bits = |o: &netsim::decompose::DecomposedOutcome| -> Vec<u64> {
        o.per_flow_mean_wait.iter().map(|x| x.to_bits()).collect()
    };
    if bits(&base) != bits(&big) || base.link_departures != big.link_departures {
        return Err("decomposition not invariant under x2 byte-axis dilation".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic_and_moderately_loaded() {
        let a = scenario(7, 0.7);
        let b = scenario(7, 0.7);
        assert_eq!(a.flows.len(), b.flows.len());
        assert_eq!(a.links.len(), b.links.len());
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(x.route, y.route);
            assert_eq!(x.start_ticks, y.start_ticks);
        }
        // Queueing must actually occur at ρ = 0.7, or the tolerance check
        // is vacuous.
        let dec = DecomposeInput::new(&a).unwrap().run();
        assert!(
            dec.class_hop_wait_sum.iter().sum::<u64>() > 0,
            "scenario must generate contention"
        );
    }

    #[test]
    fn conservation_holds_on_seeded_scenarios() {
        for seed in 0..4 {
            let cfg = scenario(seed, 0.7);
            packet_conservation(&cfg).unwrap();
        }
    }

    #[test]
    fn e2e_tolerance_holds_at_moderate_load() {
        for seed in 0..4 {
            let cfg = scenario(seed, 0.7);
            e2e_within_tolerance(&cfg, E2E_REL_TOLERANCE).unwrap();
        }
    }

    #[test]
    fn sharding_never_changes_the_composition() {
        let cfg = scenario(11, 0.7);
        shard_invariance(&cfg, &[1, 2, 5]).unwrap();
    }

    #[test]
    fn ecmp_routes_match_the_oracle() {
        let spec = LinkSpec::new(25_000_000.0, SchedulerKind::Wtp);
        for topology in [
            Topology::leaf_spine(3, 2, 2, &spec).unwrap(),
            Topology::fat_tree(4, &spec).unwrap(),
        ] {
            route_oracle(&topology, 0x4D45_5348, 4).unwrap();
        }
    }

    #[test]
    fn byte_axis_dilation_is_exact() {
        size_rate_rescale(&scenario(2, 0.7)).unwrap();
    }
}
