//! The named check registry the `conformance` binary runs.
//!
//! Every entry is a deterministic function of a seed, so a failure report
//! ("check X, seed N") is immediately reproducible; the proptest-based
//! tests layer random-case generation *and shrinking* on top of the same
//! underlying check functions.

use sched::Sdp;

use crate::metamorphic::{
    conservation_audit, interleave_check, permutation_check, proportional_kinds,
    size_rescale_check, size_rescale_kinds, time_rescale_check, time_rescale_kinds,
};
use crate::oracle::{diff_wtp, feasibility_witness, oracle_self_check};
use crate::overloaded_arrivals;
use crate::{decompose, fluid, rank_diff, Arrival};

/// One named conformance check, runnable on any seed.
pub struct Check {
    /// Stable name printed by the runner.
    pub name: &'static str,
    /// Runs the check for one seed.
    pub run: fn(u64) -> Result<(), String>,
}

fn workload(seed: u64) -> Vec<Arrival> {
    overloaded_arrivals(seed, 300)
}

fn check_oracle_self(seed: u64) -> Result<(), String> {
    oracle_self_check(&Sdp::paper_default(), &workload(seed))
}

fn check_wtp_oracle_diff(seed: u64) -> Result<(), String> {
    diff_wtp(&Sdp::paper_default(), &workload(seed), 1.0).map_err(|d| d.to_string())
}

fn check_proposition_1(seed: u64) -> Result<(), String> {
    // Draining-load workload: the lag bound is per busy period (see
    // `fluid`'s module docs), so the check runs at ρ = 0.9, not overload.
    fluid::check_proposition_1(
        &Sdp::paper_default(),
        &crate::loaded_arrivals(seed, 600, 0.9),
        1.0,
    )
}

fn check_conservation(seed: u64) -> Result<(), String> {
    conservation_audit(&Sdp::paper_default(), &workload(seed))
}

fn check_time_rescale(seed: u64) -> Result<(), String> {
    let sdp = Sdp::paper_default();
    let arrivals = workload(seed);
    for kind in time_rescale_kinds() {
        time_rescale_check(kind, &sdp, &arrivals, 4)?;
    }
    Ok(())
}

fn check_size_rescale(seed: u64) -> Result<(), String> {
    let sdp = Sdp::paper_default();
    let arrivals = workload(seed);
    for kind in size_rescale_kinds() {
        size_rescale_check(kind, &sdp, &arrivals, 2)?;
    }
    Ok(())
}

fn check_feasibility(seed: u64) -> Result<(), String> {
    let sdp = Sdp::paper_default();
    // Uniform packet sizes: `stats`'s feasible region is packet-weighted,
    // which matches the byte-conservation law only at one size (see
    // `oracle::feasibility_witness`).
    let arrivals = crate::uniform_overloaded_arrivals(seed, 300);
    for kind in sched::SchedulerKind::ALL {
        feasibility_witness(kind, &sdp, &arrivals)?;
    }
    Ok(())
}

fn check_interleave(seed: u64) -> Result<(), String> {
    let sdp = Sdp::paper_default();
    for kind in sched::SchedulerKind::ALL {
        interleave_check(kind, &sdp, seed)?;
    }
    Ok(())
}

fn check_permutation(seed: u64) -> Result<(), String> {
    let sdp = Sdp::paper_default();
    for kind in proportional_kinds() {
        permutation_check(kind, &sdp, seed, 0.40)?;
    }
    Ok(())
}

fn check_rank_twins(seed: u64) -> Result<(), String> {
    let sdp = Sdp::paper_default();
    // Two workload families: size-mixed overload and uniform sizes (the
    // latter maximizes exact priority ties, the rank core's sharp edge).
    for arrivals in [
        workload(seed),
        crate::uniform_overloaded_arrivals(seed, 300),
    ] {
        for (bespoke, rank) in rank_diff::pairs() {
            rank_diff::lockstep_diff(bespoke, rank, &sdp, &arrivals, 1.0)
                .and_then(|()| rank_diff::replay_diff(bespoke, rank, &sdp, &arrivals, 1.0))
                .map_err(|d| d.to_string())?;
        }
        rank_diff::lockstep_peek_wtp(&sdp, &arrivals, 1.0)?;
    }
    Ok(())
}

fn check_rank_stream(seed: u64) -> Result<(), String> {
    let sdp = Sdp::paper_default();
    for (bespoke, rank) in rank_diff::pairs() {
        rank_diff::stream_diff(bespoke, rank, &sdp, seed).map_err(|d| d.to_string())?;
    }
    Ok(())
}

fn check_mesh_conservation(seed: u64) -> Result<(), String> {
    decompose::packet_conservation(&decompose::scenario(seed, 0.7))
}

fn check_mesh_e2e_tolerance(seed: u64) -> Result<(), String> {
    decompose::e2e_within_tolerance(
        &decompose::scenario(seed, 0.7),
        decompose::E2E_REL_TOLERANCE,
    )
}

fn check_mesh_shard_invariance(seed: u64) -> Result<(), String> {
    decompose::shard_invariance(&decompose::scenario(seed, 0.7), &[1, 2, 5])
}

fn check_ecmp_route_oracle(seed: u64) -> Result<(), String> {
    let spec = netsim::LinkSpec::new(25_000_000.0, sched::SchedulerKind::Wtp);
    let topology =
        netsim::Topology::leaf_spine(2 + (seed % 2) as usize, 1 + (seed % 3) as usize, 2, &spec)
            .expect("valid dims");
    decompose::route_oracle(&topology, seed, 3)
}

fn check_mesh_dilation(seed: u64) -> Result<(), String> {
    decompose::size_rate_rescale(&decompose::scenario(seed, 0.7))
}

/// Every check in the suite, in execution order (cheapest first).
pub fn all_checks() -> Vec<Check> {
    vec![
        Check {
            name: "oracle-self-check",
            run: check_oracle_self,
        },
        Check {
            name: "wtp-oracle-diff",
            run: check_wtp_oracle_diff,
        },
        Check {
            name: "bpr-proposition-1",
            run: check_proposition_1,
        },
        Check {
            name: "eq5-conservation",
            run: check_conservation,
        },
        Check {
            name: "time-rescale",
            run: check_time_rescale,
        },
        Check {
            name: "size-rescale",
            run: check_size_rescale,
        },
        Check {
            name: "eq7-feasibility-witness",
            run: check_feasibility,
        },
        Check {
            name: "rank-twin-diff",
            run: check_rank_twins,
        },
        Check {
            name: "rank-stream-diff",
            run: check_rank_stream,
        },
        Check {
            name: "ecmp-route-oracle",
            run: check_ecmp_route_oracle,
        },
        Check {
            name: "mesh-packet-conservation",
            run: check_mesh_conservation,
        },
        Check {
            name: "mesh-shard-invariance",
            run: check_mesh_shard_invariance,
        },
        Check {
            name: "mesh-e2e-tolerance",
            run: check_mesh_e2e_tolerance,
        },
        Check {
            name: "mesh-byte-dilation",
            run: check_mesh_dilation,
        },
        Check {
            name: "interleave-equivalence",
            run: check_interleave,
        },
        Check {
            name: "label-permutation",
            run: check_permutation,
        },
    ]
}

/// One failure from a suite run.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The failing check's name.
    pub check: &'static str,
    /// The seed it failed on.
    pub seed: u64,
    /// The check's error message.
    pub message: String,
}

/// Runs every check over `seeds` seeds, collecting all failures (the run
/// does not stop at the first).
pub fn run_suite(seeds: u64, mut progress: impl FnMut(&str, u64, bool)) -> Vec<Failure> {
    let mut failures = Vec::new();
    for check in all_checks() {
        for seed in 0..seeds {
            let result = (check.run)(seed);
            progress(check.name, seed, result.is_ok());
            if let Err(message) = result {
                failures.push(Failure {
                    check: check.name,
                    seed,
                    message,
                });
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        feature = "mutated",
        ignore = "the suite intentionally fails under the seeded mutation"
    )]
    #[cfg_attr(
        feature = "mutated-pifo",
        ignore = "the suite intentionally fails under the seeded rank mutation"
    )]
    fn full_suite_passes_clean() {
        let failures = run_suite(3, |_, _, _| {});
        assert!(failures.is_empty(), "{failures:#?}");
    }

    #[test]
    #[cfg(feature = "mutated")]
    fn full_suite_catches_the_mutation() {
        let failures = run_suite(3, |_, _, _| {});
        assert!(
            failures.iter().any(|f| f.check == "wtp-oracle-diff"),
            "the oracle diff must catch the flipped tie-break; failures: {failures:#?}"
        );
    }

    #[test]
    #[cfg(feature = "mutated-pifo")]
    fn full_suite_catches_the_pifo_mutation() {
        let failures = run_suite(3, |_, _, _| {});
        assert!(
            failures.iter().any(|f| f.check == "rank-twin-diff"),
            "rank_diff must catch the flipped rank-core tie-break; failures: {failures:#?}"
        );
    }
}
