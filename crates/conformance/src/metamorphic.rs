//! Metamorphic properties over all 11 bespoke [`SchedulerKind`]s plus the
//! rank-core `Pifo(_)` kinds.
//!
//! Each property transforms a workload in a way with a *known* effect on
//! the output and fails if the implementation disagrees:
//!
//! * **Eq. 5 conservation audit** — every work-conserving non-preemptive
//!   scheduler produces the identical Σ size·wait and busy-period end on
//!   the same trace;
//! * **time rescaling** — arrival times ×k and link rate ÷k (k a power of
//!   two, so every float operation is an exact exponent shift) must scale
//!   every departure time by exactly k and keep the departure order
//!   bit-for-bit. Holds for every scheduler except **Additive** (and its
//!   rank twin), whose priority `w + s` is inhomogeneous in time — the
//!   paper's own §4.2 critique of Eq. 3 — and **LSTF**, whose slack
//!   budgets are likewise absolute tick offsets;
//! * **size rescaling** — sizes ×k and times ×k at fixed rate likewise
//!   scales delays by k. Additionally excludes **DRR**, whose quantum is a
//!   fixed 1500 bytes and does not scale with the workload;
//! * **label permutation** — feeding the *same* heterogeneous traffic
//!   streams to different class labels must not move the proportional
//!   schedulers' delay ratios away from the inverse-SDP targets (Eq.
//!   10/13): the ratios are a property of the SDPs, not of which stream
//!   carries which label. Statistical, for the proportional schedulers
//!   (WTP/PAD/HPD) under sustained overload;
//! * **interleave equivalence** — the materialized `Session::trace` path (dyn
//!   dispatch) and the streaming `MergedStream` path (monomorphized via
//!   [`sched::SchedulerVisitor`]) must produce identical departures.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sched::{RankKind, Scheduler, SchedulerKind, SchedulerVisitor, Sdp};
use simcore::Time;
use traffic::{ClassSource, IatDist, MergedStream, SizeDist, Trace};

use crate::{class_mean_waits, replay, Arrival};

/// Eq. 5 in byte form: Σ size·wait and the busy-period end are invariant
/// across every scheduler on the same trace, and nobody loses packets.
pub fn conservation_audit(sdp: &Sdp, arrivals: &[Arrival]) -> Result<(), String> {
    let mut reference: Option<(&'static str, u128, u64)> = None;
    for kind in SchedulerKind::ALL
        .into_iter()
        .chain(SchedulerKind::PIFO_ALL)
    {
        let deps = replay(kind, sdp, arrivals, 1.0);
        if deps.len() != arrivals.len() {
            return Err(format!(
                "{} lost packets: {} of {}",
                kind.name(),
                deps.len(),
                arrivals.len()
            ));
        }
        let weighted: u128 = deps
            .iter()
            .map(|d| d.size as u128 * (d.start - d.arrival) as u128)
            .sum();
        let busy_end = deps.iter().map(|d| d.finish).max().unwrap_or(0);
        match reference {
            None => reference = Some((kind.name(), weighted, busy_end)),
            Some((ref_name, ref_w, ref_end)) => {
                if weighted != ref_w {
                    return Err(format!(
                        "Eq. 5 violated: {} has Σ size·wait = {weighted}, {ref_name} has {ref_w}",
                        kind.name()
                    ));
                }
                if busy_end != ref_end {
                    return Err(format!(
                        "work conservation violated: {} ends busy period at {busy_end}, {ref_name} at {ref_end}",
                        kind.name()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Schedulers for which time rescaling is an exact invariance.
///
/// Excluded: Additive and its rank twin (priority `w + s` mixes ticks
/// with dimensionless offsets) and LSTF (slack budgets are absolute tick
/// offsets) — the same time-inhomogeneity, expressed as a rank.
pub fn time_rescale_kinds() -> Vec<SchedulerKind> {
    SchedulerKind::ALL
        .iter()
        .chain(SchedulerKind::PIFO_ALL.iter())
        .copied()
        .filter(|k| {
            !matches!(
                k,
                SchedulerKind::Additive
                    | SchedulerKind::Pifo(RankKind::Additive)
                    | SchedulerKind::Pifo(RankKind::Lstf)
            )
        })
        .collect()
}

/// Schedulers for which size rescaling is an exact invariance.
pub fn size_rescale_kinds() -> Vec<SchedulerKind> {
    SchedulerKind::ALL
        .iter()
        .chain(SchedulerKind::PIFO_ALL.iter())
        .copied()
        .filter(|k| {
            !matches!(
                k,
                SchedulerKind::Additive
                    | SchedulerKind::Drr
                    | SchedulerKind::Pifo(RankKind::Additive)
                    | SchedulerKind::Pifo(RankKind::Lstf)
            )
        })
        .collect()
}

/// Time rescaling: arrivals at `t·k` on a link of `1/k` bytes/tick must
/// reproduce the base run with every timestamp multiplied by exactly `k`.
///
/// # Panics
/// Panics if `k` is not a power of two (exactness requires it).
pub fn time_rescale_check(
    kind: SchedulerKind,
    sdp: &Sdp,
    arrivals: &[Arrival],
    k: u64,
) -> Result<(), String> {
    assert!(k.is_power_of_two(), "scale factor must be a power of two");
    let base = replay(kind, sdp, arrivals, 1.0);
    let scaled_arrivals: Vec<Arrival> = arrivals.iter().map(|&(t, c, s)| (t * k, c, s)).collect();
    let scaled = replay(kind, sdp, &scaled_arrivals, 1.0 / k as f64);
    if base.len() != scaled.len() {
        return Err(format!(
            "{}: departure counts differ under time rescale",
            kind.name()
        ));
    }
    for (i, (b, s)) in base.iter().zip(&scaled).enumerate() {
        if (s.seq, s.class, s.start, s.finish) != (b.seq, b.class, b.start * k, b.finish * k) {
            return Err(format!(
                "{}: time rescale ×{k} broke at departure #{i}: base {b:?}, scaled {s:?}",
                kind.name()
            ));
        }
    }
    Ok(())
}

/// Size rescaling: sizes and times both ×k at fixed rate must scale every
/// departure time by exactly `k` and keep the order.
///
/// # Panics
/// Panics if `k` is not a power of two.
pub fn size_rescale_check(
    kind: SchedulerKind,
    sdp: &Sdp,
    arrivals: &[Arrival],
    k: u64,
) -> Result<(), String> {
    assert!(k.is_power_of_two(), "scale factor must be a power of two");
    let base = replay(kind, sdp, arrivals, 1.0);
    let scaled_arrivals: Vec<Arrival> = arrivals
        .iter()
        .map(|&(t, c, s)| (t * k, c, s * k as u32))
        .collect();
    let scaled = replay(kind, sdp, &scaled_arrivals, 1.0);
    if base.len() != scaled.len() {
        return Err(format!(
            "{}: departure counts differ under size rescale",
            kind.name()
        ));
    }
    for (i, (b, s)) in base.iter().zip(&scaled).enumerate() {
        if (s.seq, s.class, s.start, s.finish) != (b.seq, b.class, b.start * k, b.finish * k) {
            return Err(format!(
                "{}: size rescale ×{k} broke at departure #{i}: base {b:?}, scaled {s:?}",
                kind.name()
            ));
        }
    }
    Ok(())
}

/// Four Poisson streams of uniform 100-byte packets differing only in
/// arrival *rate* (byte rates [0.4, 0.25, 0.2, 0.1] ≈ ρ 0.95), with
/// stream *i* feeding class `perm[i]`. The per-stream workload is
/// independent of the labeling, so two permutations see statistically
/// identical aggregate traffic while the per-class loads change — the
/// proportional schedulers must hold the Eq. 10/13 delay ratios anyway.
///
/// Uniform sizes and stable (≲1) load are deliberate: PAD equalizes
/// s_i·(mean delay) over *counts*, and the feedback schedulers only
/// converge to the targets when the backlog keeps turning over. Heavily
/// size-skewed overload makes the achieved ratios load-dependent for
/// every scheduler, which would turn this metamorphic into noise.
pub fn permuted_stream_arrivals(seed: u64, perm: &[u8; 4], horizon: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let gaps = [250.0f64, 400.0, 500.0, 1000.0];
    const SIZE: u32 = 100;
    let mut out = Vec::new();
    for i in 0..4 {
        let mut t = 0.0f64;
        loop {
            t += -gaps[i] * (1.0 - rng.random::<f64>()).ln();
            if t > horizon as f64 {
                break;
            }
            out.push((t.round() as u64, perm[i], SIZE));
        }
    }
    out.sort_by_key(|e| e.0);
    out
}

/// Checks that a proportional scheduler's per-class mean delay ratios sit
/// within `tol` (relative) of the inverse-SDP targets on this workload —
/// the Eq. 10/13 heavy-load prediction the permutation metamorphic relies
/// on.
pub fn proportional_ratio_check(
    kind: SchedulerKind,
    sdp: &Sdp,
    arrivals: &[Arrival],
    tol: f64,
) -> Result<(), String> {
    let deps = replay(kind, sdp, arrivals, 1.0);
    let waits = class_mean_waits(&deps, sdp.num_classes());
    for c in 0..sdp.num_classes() - 1 {
        let target = sdp.target_ratio(c);
        if waits[c + 1] <= 0.0 {
            return Err(format!(
                "{}: class {} has zero mean wait",
                kind.name(),
                c + 1
            ));
        }
        let got = waits[c] / waits[c + 1];
        if (got - target).abs() / target > tol {
            return Err(format!(
                "{}: delay ratio d{}/d{} = {got:.3} strays from target {target} by more than {:.0}% (waits {waits:?})",
                kind.name(),
                c,
                c + 1,
                tol * 100.0
            ));
        }
    }
    Ok(())
}

/// The label-permutation metamorphic for one proportional scheduler:
/// under every supplied permutation of stream-to-class assignment, the
/// achieved delay ratios must stay at the inverse-SDP targets.
pub fn permutation_check(
    kind: SchedulerKind,
    sdp: &Sdp,
    seed: u64,
    tol: f64,
) -> Result<(), String> {
    const PERMS: [[u8; 4]; 3] = [[0, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]];
    for perm in &PERMS {
        let arrivals = permuted_stream_arrivals(seed, perm, 600_000);
        proportional_ratio_check(kind, sdp, &arrivals, tol)
            .map_err(|e| format!("under stream permutation {perm:?}: {e}"))?;
    }
    Ok(())
}

/// The proportional schedulers the permutation metamorphic applies to —
/// the bespoke trio and their rank-core twins.
pub fn proportional_kinds() -> [SchedulerKind; 6] {
    [
        SchedulerKind::Wtp,
        SchedulerKind::Pad,
        SchedulerKind::Hpd,
        SchedulerKind::Pifo(RankKind::Wtp),
        SchedulerKind::Pifo(RankKind::Pad),
        SchedulerKind::Pifo(RankKind::Hpd),
    ]
}

struct StreamRun {
    sources: Vec<ClassSource>,
    seed: u64,
    horizon: Time,
}

impl SchedulerVisitor for StreamRun {
    type Out = Vec<(u8, u64, u64)>;
    fn visit<S: Scheduler>(self, mut s: S) -> Self::Out {
        let stream = MergedStream::per_source(self.sources, self.seed, self.horizon);
        let mut out = Vec::new();
        qsim::run_trace_on(&mut s, stream, 1.0, |d| {
            out.push((d.packet.class, d.packet.arrival.ticks(), d.start.ticks()));
        });
        out
    }
}

/// Interleave equivalence: for the same sources, horizon and seed, the
/// materialized `Session` trace path (`Box<dyn Scheduler>`) and the
/// streaming `MergedStream` path (monomorphized) must produce identical
/// departures.
pub fn interleave_check(kind: SchedulerKind, sdp: &Sdp, seed: u64) -> Result<(), String> {
    let horizon = Time::from_ticks(200_000);
    let mk_sources = || -> Vec<ClassSource> {
        (0..4u8)
            .map(|c| {
                ClassSource::new(
                    c,
                    IatDist::paper_pareto(600.0 * (c as f64 + 1.0)).expect("valid mean"),
                    SizeDist::paper(),
                )
            })
            .collect()
    };

    let trace = Trace::generate_per_source(&mut mk_sources(), horizon, seed);
    let mut s = kind.build(sdp, 1.0);
    let mut trace_deps = Vec::new();
    qsim::Session::trace(&trace, 1.0).run(s.as_mut(), |d| {
        trace_deps.push((d.packet.class, d.packet.arrival.ticks(), d.start.ticks()));
    });

    let stream_deps = kind.build_and_visit(
        sdp,
        1.0,
        StreamRun {
            sources: mk_sources(),
            seed,
            horizon,
        },
    );

    if trace_deps != stream_deps {
        let first = trace_deps
            .iter()
            .zip(&stream_deps)
            .position(|(a, b)| a != b)
            .unwrap_or(trace_deps.len().min(stream_deps.len()));
        return Err(format!(
            "{}: trace and streaming paths diverge at departure #{first} \
             (trace: {:?}, stream: {:?}; counts {} vs {})",
            kind.name(),
            trace_deps.get(first),
            stream_deps.get(first),
            trace_deps.len(),
            stream_deps.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overloaded_arrivals;

    #[test]
    fn conservation_audit_on_random_overload() {
        let sdp = Sdp::paper_default();
        for seed in 0..10 {
            conservation_audit(&sdp, &overloaded_arrivals(seed, 250))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn time_rescale_is_exact_for_applicable_kinds() {
        let sdp = Sdp::paper_default();
        let arrivals = overloaded_arrivals(5, 200);
        for kind in time_rescale_kinds() {
            for k in [2u64, 4, 8] {
                time_rescale_check(kind, &sdp, &arrivals, k).unwrap();
            }
        }
    }

    #[test]
    fn size_rescale_is_exact_for_applicable_kinds() {
        let sdp = Sdp::paper_default();
        let arrivals = overloaded_arrivals(6, 200);
        for kind in size_rescale_kinds() {
            for k in [2u64, 4] {
                size_rescale_check(kind, &sdp, &arrivals, k).unwrap();
            }
        }
    }

    #[test]
    fn interleave_equivalence_for_all_kinds() {
        let sdp = Sdp::paper_default();
        for kind in SchedulerKind::ALL
            .into_iter()
            .chain(SchedulerKind::PIFO_ALL)
        {
            interleave_check(kind, &sdp, 21).unwrap();
        }
    }

    #[test]
    fn permutation_invariance_of_proportional_ratios() {
        let sdp = Sdp::paper_default();
        for kind in proportional_kinds() {
            permutation_check(kind, &sdp, 17, 0.40)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }
}
