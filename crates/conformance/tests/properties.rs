//! Property-test layer over the conformance checks: random workloads with
//! **shrinking**. Strategies deliberately avoid a top-level `prop_map`
//! (the shim cannot shrink through mapped values), so a failing case is
//! minimized — small vectors, small times — before it is printed.

use conformance::decompose::{
    packet_conservation, route_oracle, shard_invariance, SCENARIO_SCHEDULERS,
};
use conformance::fluid::bpr_service_lag;
use conformance::metamorphic::{
    conservation_audit, size_rescale_check, size_rescale_kinds, time_rescale_check,
    time_rescale_kinds,
};
use conformance::oracle::{diff_wtp, feasibility_witness, oracle_self_check};
use conformance::{rank_diff, Arrival};
use netsim::mesh::FlowModel;
use netsim::{HostFlow, LinkSpec, Topology, TopologyConfig};
use proptest::prelude::*;
use sched::{SchedulerKind, Sdp};

/// Unsorted arrival tuples; the body sorts. Kept shrinkable end-to-end.
fn arrivals_strategy() -> impl Strategy<Value = Vec<Arrival>> {
    prop::collection::vec(
        (
            0u64..20_000,
            0u8..4,
            prop_oneof![Just(40u32), Just(550), Just(1500)],
        ),
        1..150,
    )
}

/// Uniform-size arrivals for the packet-weighted feasibility witness.
fn uniform_arrivals_strategy() -> impl Strategy<Value = Vec<(u64, u8)>> {
    prop::collection::vec((0u64..20_000, 0u8..4), 1..150)
}

/// Arrivals on a coarse 48-slot tick grid (scaled ×500 in the body):
/// same-tick multi-class batches — the zero-wait priority ties where
/// tie-break rules decide — occur in nearly every case. This is what lets
/// the oracle-diff property catch the `mutate-wtp-tiebreak` flip.
fn tie_rich_strategy() -> impl Strategy<Value = Vec<Arrival>> {
    prop::collection::vec(
        (
            0u64..48,
            0u8..4,
            prop_oneof![Just(40u32), Just(550), Just(1500)],
        ),
        2..100,
    )
}

fn sorted(mut arrivals: Vec<Arrival>) -> Vec<Arrival> {
    arrivals.sort_by_key(|e| e.0);
    arrivals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The production WTP never diverges from the from-scratch oracle —
    /// per decision instant, per departure, via both replay paths.
    #[test]
    fn prop_wtp_matches_oracle(arrivals in arrivals_strategy()) {
        let arrivals = sorted(arrivals);
        if let Err(d) = diff_wtp(&Sdp::paper_default(), &arrivals, 1.0) {
            prop_assert!(false, "{d}");
        }
    }

    /// Same differential on tie-rich batched traffic. Under the seeded
    /// `mutated` feature this is the test that fails — and shrinks the
    /// workload down to a minimal same-tick pair before reporting it.
    #[test]
    fn prop_wtp_matches_oracle_on_tie_bursts(slots in tie_rich_strategy()) {
        let arrivals = sorted(slots.iter().map(|&(t, c, s)| (t * 500, c, s)).collect());
        if let Err(d) = diff_wtp(&Sdp::paper_default(), &arrivals, 1.0) {
            prop_assert!(false, "{d}");
        }
    }

    /// Every bespoke scheduler and its rank-core twin are bit-identical —
    /// per-decision winners via the decision-value audit, full departure
    /// records via the production trace path.
    #[test]
    fn prop_rank_twins_match_bespoke(arrivals in arrivals_strategy()) {
        let arrivals = sorted(arrivals);
        let sdp = Sdp::paper_default();
        for (bespoke, rank) in rank_diff::pairs() {
            if let Err(d) = rank_diff::lockstep_diff(bespoke, rank, &sdp, &arrivals, 1.0)
                .and_then(|()| rank_diff::replay_diff(bespoke, rank, &sdp, &arrivals, 1.0))
            {
                prop_assert!(false, "{d}");
            }
        }
    }

    /// Same differential on tie-rich batched traffic. Under the seeded
    /// `mutated-pifo` feature this is the test that fails — and shrinks
    /// the workload to a minimal same-tick counterexample before
    /// reporting it.
    #[test]
    fn prop_rank_twins_match_on_tie_bursts(slots in tie_rich_strategy()) {
        let arrivals = sorted(slots.iter().map(|&(t, c, s)| (t * 500, c, s)).collect());
        let sdp = Sdp::paper_default();
        for (bespoke, rank) in rank_diff::pairs() {
            if let Err(d) = rank_diff::lockstep_diff(bespoke, rank, &sdp, &arrivals, 1.0) {
                prop_assert!(false, "{d}");
            }
        }
        if let Err(e) = rank_diff::lockstep_peek_wtp(&sdp, &arrivals, 1.0) {
            prop_assert!(false, "{e}");
        }
    }

    /// The oracle's own replay stays lossless, causal and class-FIFO.
    #[test]
    fn prop_oracle_self_check(arrivals in arrivals_strategy()) {
        let arrivals = sorted(arrivals);
        if let Err(e) = oracle_self_check(&Sdp::paper_default(), &arrivals) {
            prop_assert!(false, "{e}");
        }
    }

    /// Eq. 5: Σ size·wait and the busy-period end are scheduler-invariant.
    #[test]
    fn prop_conservation_across_all_kinds(arrivals in arrivals_strategy()) {
        let arrivals = sorted(arrivals);
        if let Err(e) = conservation_audit(&Sdp::paper_default(), &arrivals) {
            prop_assert!(false, "{e}");
        }
    }

    /// Fluid-BPR reconciliation: whatever the load, once the packetized
    /// run drains, the fluid server has served byte-identical per-class
    /// totals (work conservation leaves only float noise).
    #[test]
    fn prop_fluid_bpr_reconciles_when_drained(arrivals in arrivals_strategy()) {
        let arrivals = sorted(arrivals);
        let report = bpr_service_lag(&Sdp::paper_default(), &arrivals, 1.0);
        prop_assert!(
            report.end_lag_bytes <= 1e-3,
            "end lag {} bytes",
            report.end_lag_bytes
        );
    }

    /// Achieved mean delays are a feasible Eq. 7 point for every scheduler
    /// (uniform sizes: packet-weighted = byte-weighted).
    #[test]
    fn prop_achieved_delays_are_feasible(pairs in uniform_arrivals_strategy()) {
        let mut arrivals: Vec<Arrival> = pairs.iter().map(|&(t, c)| (t, c, 500)).collect();
        arrivals.sort_by_key(|e| e.0);
        for kind in SchedulerKind::ALL {
            if let Err(e) = feasibility_witness(kind, &Sdp::paper_default(), &arrivals) {
                prop_assert!(false, "{e}");
            }
        }
    }
}

/// Raw material for a random small leaf-spine scenario: fabric dims, an
/// SDP spacing knob, a scheduler pick, and unrouted flow tuples
/// `(src_pick, dst_hop, gap_step, phase)`. Plain tuples, so a failing
/// fabric shrinks toward one leaf, one spine, one flow.
type MeshCase = ((usize, usize, usize), u32, Vec<(u16, u16, u32, u32)>);

fn mesh_case_strategy() -> impl Strategy<Value = MeshCase> {
    (
        (1usize..4, 1usize..3, 1usize..3),
        0u32..6,
        prop::collection::vec((0u16..64, 0u16..64, 1u32..8, 0u32..1_000_000), 1..10),
    )
}

/// Lowers a [`MeshCase`] to a routed mesh. Gaps step in units of 200k
/// ticks (≈1.25 packet tx times at 25 Mbps), so dense cases overload
/// links — the conservation and sharding laws must hold regardless.
fn lower_case(case: &MeshCase, seed: u64) -> Result<netsim::mesh::MeshConfig, String> {
    let &((leaves, spines, hosts_per_leaf), sched_pick, ref raw) = case;
    let spec = LinkSpec::new(
        25_000_000.0,
        SCENARIO_SCHEDULERS[sched_pick as usize % SCENARIO_SCHEDULERS.len()],
    );
    // Guarantee at least two hosts so src != dst is satisfiable.
    let hosts_per_leaf = if leaves == 1 { 2 } else { hosts_per_leaf };
    let topology = Topology::leaf_spine(leaves, spines, hosts_per_leaf, &spec)?;
    let hosts = topology.hosts();
    let flows = raw
        .iter()
        .enumerate()
        .map(|(i, &(src_pick, dst_hop, gap_step, phase))| {
            let src = hosts[src_pick as usize % hosts.len()];
            let hop = 1 + dst_hop as usize % (hosts.len() - 1);
            let dst = hosts[(src_pick as usize + hop) % hosts.len()];
            HostFlow {
                src,
                dst,
                class: (i % 4) as u8,
                packet_bytes: 500,
                model: FlowModel::Periodic {
                    gap_ticks: 200_000 * gap_step as u64,
                    count: 8,
                },
                start_ticks: phase as u64,
            }
        })
        .collect();
    TopologyConfig {
        topology,
        sdp: Sdp::paper_default(),
        flows,
        seed,
        cross_horizon_ticks: 0,
    }
    .to_mesh()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Packet conservation is a theorem, not a tolerance: on any random
    /// fabric at any load (including overload), exact and decomposed
    /// engines transmit identical per-link and per-flow packet counts.
    #[test]
    fn prop_mesh_packet_conservation(case in mesh_case_strategy(), seed in 0u64..1_000) {
        let cfg = lower_case(&case, seed).expect("case lowers");
        if let Err(e) = packet_conservation(&cfg) {
            prop_assert!(false, "{e}");
        }
    }

    /// Link reports computed under any shard partition compose
    /// bit-identically to the serial run on any random fabric.
    #[test]
    fn prop_mesh_shard_invariance(case in mesh_case_strategy(), seed in 0u64..1_000) {
        let cfg = lower_case(&case, seed).expect("case lowers");
        if let Err(e) = shard_invariance(&cfg, &[2, 3]) {
            prop_assert!(false, "{e}");
        }
    }

    /// Production ECMP routes match the from-scratch oracle on any random
    /// fabric and seed.
    #[test]
    fn prop_ecmp_route_oracle(
        leaves in 1usize..4,
        spines in 1usize..3,
        seed in 0u64..1_000,
    ) {
        let spec = LinkSpec::new(25_000_000.0, SchedulerKind::Wtp);
        let topology = Topology::leaf_spine(leaves, spines, 2, &spec).expect("valid dims");
        if let Err(e) = route_oracle(&topology, seed, 3) {
            prop_assert!(false, "{e}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exact ×k time-dilation invariance for every applicable scheduler.
    #[test]
    fn prop_time_rescale_invariance(arrivals in arrivals_strategy(), k_exp in 1u32..4) {
        let arrivals = sorted(arrivals);
        let k = 1u64 << k_exp;
        for kind in time_rescale_kinds() {
            if let Err(e) = time_rescale_check(kind, &Sdp::paper_default(), &arrivals, k) {
                prop_assert!(false, "{e}");
            }
        }
    }

    /// Exact ×k size-dilation invariance for every applicable scheduler.
    #[test]
    fn prop_size_rescale_invariance(arrivals in arrivals_strategy(), k_exp in 1u32..3) {
        let arrivals = sorted(arrivals);
        let k = 1u64 << k_exp;
        for kind in size_rescale_kinds() {
            if let Err(e) = size_rescale_check(kind, &Sdp::paper_default(), &arrivals, k) {
                prop_assert!(false, "{e}");
            }
        }
    }
}
