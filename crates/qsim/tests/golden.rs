//! Golden-determinism regression test for the optimized replay paths.
//!
//! The perf work introduced three ways to drive the same single-link
//! simulation: the `dyn` trace replay (`Session::trace`), the
//! monomorphized generic loop (`run_trace_on` via
//! `SchedulerKind::build_and_visit`), and the streaming source path
//! (`Session::sources`, O(sources) memory). They must be **bit-identical**: for
//! a fixed seed, every scheduler must produce exactly the same departure
//! sequence — same packets, same start and finish ticks — on all three.
//!
//! The full `(seq, class, start, finish)` stream is FNV-hashed so a
//! mismatch anywhere in hundreds of thousands of departures fails loudly.

use qsim::{run_trace_on, Departure, Session};
use sched::{Scheduler, SchedulerKind, SchedulerVisitor, Sdp};
use simcore::Time;
use traffic::{LoadPlan, Trace};

const HORIZON_TICKS: u64 = 2_000_000;
const SEEDS: [u64; 2] = [11, 42];

/// FNV-1a over the departure stream.
#[derive(Default)]
struct DepartureHash(u64);

impl DepartureHash {
    fn new() -> Self {
        DepartureHash(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, d: &Departure) {
        for word in [
            d.packet.seq,
            d.packet.class as u64,
            d.packet.size as u64,
            d.packet.arrival.ticks(),
            d.start.ticks(),
            d.finish.ticks(),
        ] {
            for b in word.to_le_bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
}

fn sources(rho: f64) -> Vec<traffic::ClassSource> {
    LoadPlan::paper_study_a(rho)
        .unwrap()
        .pareto_sources()
        .unwrap()
}

/// Hash of the seed-implementation path: `dyn` scheduler over a
/// materialized per-source trace.
fn dyn_trace_hash(kind: SchedulerKind, rho: f64, seed: u64) -> (u64, usize) {
    let trace =
        Trace::generate_per_source(&mut sources(rho), Time::from_ticks(HORIZON_TICKS), seed);
    let mut s = kind.build(&Sdp::paper_default(), 1.0);
    let mut h = DepartureHash::new();
    let mut n = 0usize;
    Session::trace(&trace, 1.0).run(s.as_mut(), |d| {
        h.push(d);
        n += 1;
    });
    (h.0, n)
}

/// Hash of the monomorphized path: unboxed scheduler, generic loop over
/// the same materialized trace.
fn generic_trace_hash(kind: SchedulerKind, rho: f64, seed: u64) -> (u64, usize) {
    struct Replay {
        trace: Trace,
    }
    impl SchedulerVisitor for Replay {
        type Out = (u64, usize);
        fn visit<S: Scheduler>(self, mut s: S) -> (u64, usize) {
            let mut h = DepartureHash::new();
            let mut n = 0usize;
            run_trace_on(&mut s, self.trace.entries().iter().copied(), 1.0, |d| {
                h.push(d);
                n += 1;
            });
            (h.0, n)
        }
    }
    let trace =
        Trace::generate_per_source(&mut sources(rho), Time::from_ticks(HORIZON_TICKS), seed);
    kind.build_and_visit(&Sdp::paper_default(), 1.0, Replay { trace })
}

/// Hash of the streaming path: no trace materialized at all.
fn streaming_hash(kind: SchedulerKind, rho: f64, seed: u64) -> (u64, usize) {
    let mut s = kind.build(&Sdp::paper_default(), 1.0);
    let mut h = DepartureHash::new();
    let mut n = 0usize;
    Session::sources(&sources(rho), Time::from_ticks(HORIZON_TICKS), seed, 1.0).run(
        s.as_mut(),
        |d| {
            h.push(d);
            n += 1;
        },
    );
    (h.0, n)
}

#[test]
fn all_replay_paths_are_bit_identical_for_every_scheduler() {
    for kind in SchedulerKind::ALL {
        for seed in SEEDS {
            let (dyn_hash, dyn_n) = dyn_trace_hash(kind, 0.95, seed);
            let (gen_hash, gen_n) = generic_trace_hash(kind, 0.95, seed);
            let (str_hash, str_n) = streaming_hash(kind, 0.95, seed);
            assert!(
                dyn_n > 1000,
                "{kind} seed {seed}: suspiciously few departures ({dyn_n})"
            );
            assert_eq!(
                (dyn_hash, dyn_n),
                (gen_hash, gen_n),
                "{kind} seed {seed}: generic loop diverged from dyn replay"
            );
            assert_eq!(
                (dyn_hash, dyn_n),
                (str_hash, str_n),
                "{kind} seed {seed}: streaming path diverged from dyn replay"
            );
        }
    }
}

#[test]
fn departure_hash_is_reproducible_across_runs() {
    // Same process, two independent evaluations: guards against hidden
    // global state (thread-local RNGs, time-dependent code) sneaking into
    // the simulation.
    let a = dyn_trace_hash(SchedulerKind::Wtp, 0.95, 7);
    let b = dyn_trace_hash(SchedulerKind::Wtp, 0.95, 7);
    assert_eq!(a, b);
}

#[test]
fn experiment_streaming_equals_materialized_measurement() {
    // The Experiment harness measures via the streaming monomorphized
    // path; feeding run_one the materialized trace must give identical
    // summaries.
    use qsim::Experiment;
    let e = Experiment::paper(0.9, Sdp::paper_default(), 2_000, vec![5]);
    let streamed = e.run(SchedulerKind::Wtp);
    let trace = e.trace_for_seed(5);
    let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
    let materialized = e.run_one(s.as_mut(), &trace);
    assert_eq!(streamed.mean_delays, materialized.mean_delays());
}

#[test]
fn jsonl_trace_is_byte_identical_across_replay_paths() {
    // The telemetry layer must not observe path-dependent state: for the
    // same workload, the JSONL export from the materialized-trace replay
    // and from the streaming (O(sources) memory) replay are the same
    // bytes. A small deterministic workload keeps the assertion readable
    // when it fails.
    use qsim::{run_sources_probed, run_trace_probed};
    use telemetry::JsonlSink;

    let horizon = Time::from_ticks(300_000);
    let seed = 21;

    let mut src_copy = sources(0.9);
    let trace = Trace::generate_per_source(&mut src_copy, horizon, seed);
    let mut s1 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
    let mut sink1 = JsonlSink::new(Vec::new());
    run_trace_probed(
        s1.as_mut(),
        trace.entries().iter().copied(),
        1.0,
        |_| {},
        &mut sink1,
    );
    let from_trace = sink1.finish().unwrap();

    let mut s2 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
    let mut sink2 = JsonlSink::new(Vec::new());
    run_sources_probed(
        s2.as_mut(),
        &sources(0.9),
        horizon,
        seed,
        1.0,
        |_| {},
        &mut sink2,
    );
    let from_stream = sink2.finish().unwrap();

    assert!(!from_trace.is_empty(), "workload produced no events");
    assert!(
        from_trace.len() > 10_000,
        "workload too small to be a meaningful golden ({} bytes)",
        from_trace.len()
    );
    if from_trace != from_stream {
        // Byte compare failed: find the first differing line for the report.
        let a = String::from_utf8_lossy(&from_trace);
        let b = String::from_utf8_lossy(&from_stream);
        for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
            assert_eq!(la, lb, "JSONL line {} diverged between replay paths", i + 1);
        }
        panic!(
            "JSONL traces differ in length: {} vs {} bytes",
            from_trace.len(),
            from_stream.len()
        );
    }

    // And the export is schema-valid, same as the CI telemetry job checks.
    let text = String::from_utf8(from_trace).unwrap();
    let lines = telemetry::schema::validate_jsonl(&text).expect("golden JSONL is schema-valid");
    assert!(lines > 0);
}

#[test]
fn noop_scenario_is_byte_identical_on_the_trace_path() {
    // Identity events (re-assert the SDP and rate already in force) must
    // not perturb a single departure or telemetry byte: after stripping
    // the scenario-event records themselves, the JSONL export and the
    // departure stream match the scenario-free run exactly.
    use qsim::run_trace_probed;
    use telemetry::JsonlSink;

    let horizon = Time::from_ticks(300_000);
    let trace = Trace::generate_per_source(&mut sources(0.9), horizon, 21);

    let mut s1 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
    let mut sink1 = JsonlSink::new(Vec::new());
    let mut plain = DepartureHash::new();
    run_trace_probed(
        s1.as_mut(),
        trace.entries().iter().copied(),
        1.0,
        |d| plain.push(d),
        &mut sink1,
    );
    let baseline = sink1.finish().unwrap();

    let sc = scenario::Scenario::builder()
        .set_sdp(Time::from_ticks(100_000), Sdp::paper_default())
        .set_link_rate(Time::from_ticks(150_000), 0, 1.0)
        .build()
        .unwrap();
    let mut s2 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
    let mut sink2 = JsonlSink::new(Vec::new());
    let mut perturbed = DepartureHash::new();
    Session::trace(&trace, 1.0)
        .probe(&mut sink2)
        .scenario(sc)
        .run(s2.as_mut(), |d| perturbed.push(d));
    let with_scenario = sink2.finish().unwrap();

    assert_eq!(plain.0, perturbed.0, "identity scenario changed departures");
    let stripped = strip_scenario_lines(&with_scenario);
    assert!(
        with_scenario.len() > stripped.len(),
        "scenario events were never recorded"
    );
    assert_eq!(
        baseline, stripped,
        "identity scenario perturbed the telemetry stream"
    );
}

#[test]
fn noop_scenario_is_byte_identical_on_the_streaming_path() {
    // Same guarantee on the O(sources) path, including a unit load surge
    // (scale 1.0 routes every source through SurgedSource, which must be
    // an exact identity).
    use qsim::run_sources_probed;
    use telemetry::JsonlSink;

    let horizon = Time::from_ticks(300_000);
    let seed = 21;

    let mut s1 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
    let mut sink1 = JsonlSink::new(Vec::new());
    let mut plain = DepartureHash::new();
    run_sources_probed(
        s1.as_mut(),
        &sources(0.9),
        horizon,
        seed,
        1.0,
        |d| plain.push(d),
        &mut sink1,
    );
    let baseline = sink1.finish().unwrap();

    let sc = scenario::Scenario::builder()
        .set_sdp(Time::from_ticks(100_000), Sdp::paper_default())
        .load_surge(Time::from_ticks(50_000), 0, 1.0)
        .set_link_rate(Time::from_ticks(150_000), 0, 1.0)
        .build()
        .unwrap();
    let mut s2 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
    let mut sink2 = JsonlSink::new(Vec::new());
    let mut perturbed = DepartureHash::new();
    Session::sources(&sources(0.9), horizon, seed, 1.0)
        .probe(&mut sink2)
        .scenario(sc)
        .run(s2.as_mut(), |d| perturbed.push(d));
    let with_scenario = sink2.finish().unwrap();

    assert_eq!(plain.0, perturbed.0, "identity scenario changed departures");
    let stripped = strip_scenario_lines(&with_scenario);
    assert!(
        with_scenario.len() > stripped.len(),
        "scenario events were never recorded"
    );
    assert_eq!(
        baseline, stripped,
        "identity scenario perturbed the telemetry stream"
    );
}

/// Drops the `"ev":"scenario"` records a scenario run adds, keeping every
/// other byte (including the trailing newline structure) intact.
fn strip_scenario_lines(jsonl: &[u8]) -> Vec<u8> {
    let text = std::str::from_utf8(jsonl).expect("JSONL is UTF-8");
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        if !line.contains("\"ev\":\"scenario\"") {
            out.push_str(line);
            out.push('\n');
        }
    }
    out.into_bytes()
}
