//! The single-link replay loop.

use sched::{Packet, Scheduler};
use simcore::{Dur, Time};
use telemetry::{NoopProbe, PacketId, Probe};
use traffic::TraceEntry;

/// One packet departure from the link.
#[derive(Debug, Clone, Copy)]
pub struct Departure {
    /// The packet as the scheduler saw it.
    pub packet: Packet,
    /// When transmission began.
    pub start: Time,
    /// When transmission completed (start + size/rate).
    pub finish: Time,
}

impl Departure {
    /// Queueing (waiting) delay: arrival → start of transmission. This is
    /// the paper's "queueing delay" metric.
    pub fn wait(&self) -> Dur {
        self.start - self.packet.arrival
    }

    /// Sojourn time: arrival → end of transmission.
    pub fn sojourn(&self) -> Dur {
        self.finish - self.packet.arrival
    }
}

/// Transmission time of `size` bytes at `rate` bytes/tick, at least 1 tick.
#[inline]
fn tx_ticks(size: u32, rate: f64) -> u64 {
    ((size as f64 / rate).round() as u64).max(1)
}

/// Replays any stream of time-ordered arrivals through any scheduler on a
/// link of `rate` bytes/tick, invoking `on_depart` for every departure in
/// order.
///
/// Semantics (matching the paper's model):
/// * non-preemptive: once transmission starts it completes;
/// * work-conserving: the link never idles while a packet is queued;
/// * arrivals at exactly a decision instant are enqueued *before* the
///   decision (arrival-before-departure tie rule);
/// * queues are unbounded (the §3 lossless ECN-regulated regime).
///
/// Both the scheduler and the arrival source are statically dispatched, so
/// the per-packet enqueue/dequeue calls inline into the loop. `arrivals`
/// may be a materialized trace (`trace.entries().iter().copied()`) or a
/// lazy generator such as [`traffic::MergedStream`], which replays the
/// identical workload in O(sources) memory.
/// [`qsim::Session::trace`](crate::Session::trace) is the trace-level
/// front door over this loop.
///
/// `arrivals` must yield entries in nondecreasing time order; the k-way
/// merge and the trace generators both guarantee that.
#[inline]
pub fn run_trace_on<S, I, F>(scheduler: &mut S, arrivals: I, rate: f64, on_depart: F)
where
    S: Scheduler + ?Sized,
    I: IntoIterator<Item = TraceEntry>,
    F: FnMut(&Departure),
{
    run_trace_probed(scheduler, arrivals, rate, on_depart, &mut NoopProbe)
}

/// [`run_trace_on`] with a [`Probe`] observing the packet lifecycle.
///
/// Every probe interaction is gated on the associated constant
/// [`Probe::ENABLED`], so with [`NoopProbe`] this monomorphizes to exactly
/// the uninstrumented loop — [`run_trace_on`] *is* this function with the
/// no-op probe, and the tracked perf baseline holds the overhead to zero.
///
/// Probe event stream per packet (single link, so `span == seq`, `hop` 0):
/// `on_arrival` and `on_enqueue` at the arrival instant (unbounded queues —
/// everything offered is admitted), `on_decision` at the decision instant
/// with the scheduler's [`decision_values`](Scheduler::decision_values)
/// audit record, and `on_depart` with `eol = true` at the finish instant.
#[inline]
pub fn run_trace_probed<S, I, F, P>(
    scheduler: &mut S,
    arrivals: I,
    rate: f64,
    mut on_depart: F,
    probe: &mut P,
) where
    S: Scheduler + ?Sized,
    I: IntoIterator<Item = TraceEntry>,
    F: FnMut(&Departure),
    P: Probe,
{
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let mut arrivals = arrivals.into_iter().peekable();
    let mut free = Time::ZERO;
    let mut seq = 0u64;
    // Scratch for the decision audit, reused across decisions.
    let mut values: Vec<(usize, f64)> = Vec::new();
    loop {
        if scheduler.is_empty() {
            let Some(e) = arrivals.next() else { break };
            if P::ENABLED {
                let id = PacketId::single_link(seq, e.class, e.size);
                probe.on_arrival(e.at, id);
                probe.on_enqueue(e.at, id);
            }
            scheduler.enqueue(Packet::new(seq, e.class, e.size, e.at));
            seq += 1;
            free = free.max(e.at);
        }
        while let Some(e) = arrivals.next_if(|e| e.at <= free) {
            if P::ENABLED {
                let id = PacketId::single_link(seq, e.class, e.size);
                probe.on_arrival(e.at, id);
                probe.on_enqueue(e.at, id);
            }
            scheduler.enqueue(Packet::new(seq, e.class, e.size, e.at));
            seq += 1;
        }
        if P::ENABLED && P::WANTS_DECISION_VALUES {
            values.clear();
            scheduler.decision_values(free, &mut values);
        }
        let pkt = scheduler
            .dequeue(free)
            .expect("work-conserving scheduler with backlog must dequeue");
        let finish = free + Dur::from_ticks(tx_ticks(pkt.size, rate));
        if P::ENABLED {
            let id = PacketId::single_link(pkt.seq, pkt.class, pkt.size);
            probe.on_decision(free, scheduler.name(), id, &values);
            probe.on_depart(id, pkt.arrival, free, finish, true);
        }
        on_depart(&Departure {
            packet: pkt,
            start: free,
            finish,
        });
        free = finish;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{Fcfs, SchedulerKind, Sdp};
    use traffic::{Trace, TraceEntry};

    fn trace(entries: &[(u64, u8, u32)]) -> Trace {
        Trace::from_entries(
            entries
                .iter()
                .map(|&(t, class, size)| TraceEntry {
                    at: Time::from_ticks(t),
                    class,
                    size,
                })
                .collect(),
        )
    }

    #[test]
    fn fcfs_waits_are_cumulative_backlog() {
        let tr = trace(&[(0, 0, 100), (0, 1, 100), (0, 0, 100)]);
        let mut s = Fcfs::new(2);
        let mut waits = Vec::new();
        crate::Session::trace(&tr, 1.0).run(&mut s, |d| waits.push(d.wait().ticks()));
        assert_eq!(waits, vec![0, 100, 200]);
    }

    #[test]
    fn idle_gaps_reset_the_clock() {
        let tr = trace(&[(0, 0, 50), (500, 0, 50)]);
        let mut s = Fcfs::new(1);
        let mut starts = Vec::new();
        crate::Session::trace(&tr, 1.0).run(&mut s, |d| starts.push(d.start.ticks()));
        assert_eq!(starts, vec![0, 500]);
    }

    #[test]
    fn rate_scales_transmission_time() {
        let tr = trace(&[(0, 0, 100), (0, 0, 100)]);
        let mut s = Fcfs::new(1);
        let mut finishes = Vec::new();
        crate::Session::trace(&tr, 2.0).run(&mut s, |d| finishes.push(d.finish.ticks()));
        assert_eq!(finishes, vec![50, 100]);
    }

    #[test]
    fn sojourn_includes_transmission() {
        let tr = trace(&[(10, 0, 100)]);
        let mut s = Fcfs::new(1);
        crate::Session::trace(&tr, 1.0).run(&mut s, |d| {
            assert_eq!(d.wait().ticks(), 0);
            assert_eq!(d.sojourn().ticks(), 100);
        });
    }

    #[test]
    fn arrival_at_decision_instant_is_seen() {
        // Packet B arrives exactly when A finishes; WTP must consider it.
        let tr = trace(&[(0, 0, 100), (100, 1, 100)]);
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let mut count = 0;
        crate::Session::trace(&tr, 1.0).run(s.as_mut(), |d| {
            count += 1;
            if d.packet.class == 1 {
                assert_eq!(d.start.ticks(), 100);
            }
        });
        assert_eq!(count, 2);
    }

    /// Records the full probe event stream as comparable strings.
    #[derive(Default)]
    struct Tape(Vec<String>);

    impl telemetry::Probe for Tape {
        fn on_arrival(&mut self, at: Time, id: PacketId) {
            self.0.push(format!("arr t={} seq={}", at.ticks(), id.seq));
        }
        fn on_enqueue(&mut self, at: Time, id: PacketId) {
            self.0.push(format!("enq t={} seq={}", at.ticks(), id.seq));
        }
        fn on_decision(
            &mut self,
            at: Time,
            scheduler: &'static str,
            winner: PacketId,
            values: &[(usize, f64)],
        ) {
            self.0.push(format!(
                "dec t={} {} win={} v={:?}",
                at.ticks(),
                scheduler,
                winner.class,
                values
            ));
        }
        fn on_depart(&mut self, id: PacketId, _a: Time, start: Time, finish: Time, eol: bool) {
            self.0.push(format!(
                "dep seq={} start={} finish={} eol={}",
                id.seq,
                start.ticks(),
                finish.ticks(),
                eol
            ));
        }
    }

    #[test]
    fn probed_replay_reports_the_full_lifecycle_in_order() {
        let tr = trace(&[(0, 0, 100), (0, 1, 100)]);
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let mut tape = Tape::default();
        let mut deps = Vec::new();
        run_trace_probed(
            s.as_mut(),
            tr.entries().iter().copied(),
            1.0,
            |d| deps.push(d.packet.class),
            &mut tape,
        );
        assert_eq!(deps, vec![1, 0]);
        assert_eq!(
            tape.0,
            vec![
                "arr t=0 seq=0",
                "enq t=0 seq=0",
                "arr t=0 seq=1",
                "enq t=0 seq=1",
                // Both waited 0 at t=0; WTP's audit shows the zero-priority
                // tie and the tie rule sends class 1 out first.
                "dec t=0 WTP win=1 v=[(0, 0.0), (1, 0.0)]",
                "dep seq=1 start=0 finish=100 eol=true",
                "dec t=100 WTP win=0 v=[(0, 100.0)]",
                "dep seq=0 start=100 finish=200 eol=true",
            ]
        );
    }

    #[test]
    fn probed_replay_departures_match_unprobed() {
        let tr = trace(&[
            (0, 0, 550),
            (10, 3, 40),
            (20, 1, 1500),
            (30, 2, 550),
            (2000, 0, 40),
        ]);
        for kind in SchedulerKind::ALL
            .into_iter()
            .chain(SchedulerKind::PIFO_ALL)
        {
            let mut plain = Vec::new();
            let mut s = kind.build(&Sdp::paper_default(), 1.0);
            crate::Session::trace(&tr, 1.0).run(s.as_mut(), |d| {
                plain.push((d.packet.seq, d.start, d.finish))
            });
            let mut probed = Vec::new();
            let mut s = kind.build(&Sdp::paper_default(), 1.0);
            let mut counter = telemetry::CountingProbe::new(4);
            run_trace_probed(
                s.as_mut(),
                tr.entries().iter().copied(),
                1.0,
                |d| probed.push((d.packet.seq, d.start, d.finish)),
                &mut counter,
            );
            assert_eq!(plain, probed, "{} diverged under probing", kind.name());
            let report = counter.report();
            assert_eq!(report.total_departures(), 5, "{}", kind.name());
            assert_eq!(report.decisions, 5, "{}", kind.name());
        }
    }

    #[test]
    fn all_schedulers_complete_the_same_trace() {
        let tr = trace(&[
            (0, 0, 550),
            (10, 3, 40),
            (20, 1, 1500),
            (30, 2, 550),
            (2000, 0, 40),
        ]);
        for kind in SchedulerKind::ALL
            .into_iter()
            .chain(SchedulerKind::PIFO_ALL)
        {
            let mut s = kind.build(&Sdp::paper_default(), 1.0);
            let mut n = 0;
            crate::Session::trace(&tr, 1.0).run(s.as_mut(), |_| n += 1);
            assert_eq!(n, 5, "{} dropped packets", kind.name());
        }
    }
}
