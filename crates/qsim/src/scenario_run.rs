//! Scenario-aware replay loops: the stationary engines of
//! [`server`](crate::server) and [`lossy`](crate::lossy) extended with a
//! [`scenario::ScenarioRuntime`] dispatch point.
//!
//! Every loop dispatches on [`Scenario::is_empty`] first and falls back to
//! the *unmodified* stationary loop, so the common no-perturbation case
//! monomorphizes to exactly the code the perf baseline tracks. The
//! scenario path visits the runtime at every admission and decision
//! instant:
//!
//! * [`Command::Reconfigure`] → [`Scheduler::reconfigure`] (schedulers
//!   answering [`ReconfigureError::Unsupported`] keep running; a class
//!   count mismatch panics — the timeline does not fit the topology);
//! * [`Command::SetLinkRate`] → future transmission times and
//!   [`Scheduler::set_link_rate`] (the packet in flight completes at the
//!   old rate — transmissions are non-preemptive);
//! * a downed link stalls service: the clock jumps to the next timeline
//!   event until the matching `LinkUp` (validation guarantees one exists).
//!   Arrivals while down are queued ([`DownPolicy::Hold`]) or discarded
//!   with an `on_drop` record ([`DownPolicy::Drop`]);
//! * classes that [left](scenario::ScenarioEvent::ClassLeave) are filtered
//!   at admission with no probe record — the source is simply gone;
//! * load surges are absorbed by the runtime; generated workloads realize
//!   them via [`traffic::SurgedSource`] (see
//!   [`run_sources_scenario_probed`]).

use scenario::{Command, DownPolicy, Scenario, ScenarioRuntime};
use sched::{Packet, ReconfigureError, Scheduler};
use simcore::{Dur, Time};
use telemetry::{PacketId, Probe};
use traffic::{ClassSource, MergedStream, SurgedSource, Trace, TraceEntry};

use crate::lossy::{run_trace_lossy_probed, LossMode, LossyReport};
use crate::server::{run_trace_probed, Departure};
use stats::Summary;

/// Transmission time of `size` bytes at `rate` bytes/tick, at least 1 tick.
#[inline]
fn tx_ticks(size: u32, rate: f64) -> u64 {
    ((size as f64 / rate).round() as u64).max(1)
}

/// Drains queued runtime commands into the scheduler and the link rate.
fn apply_commands<S: Scheduler + ?Sized>(
    scheduler: &mut S,
    rate: &mut f64,
    cmds: &mut Vec<Command>,
) {
    for cmd in cmds.drain(..) {
        match cmd {
            Command::Reconfigure(sdp) => match scheduler.reconfigure(&sdp) {
                Ok(()) | Err(ReconfigureError::Unsupported(_)) => {}
                Err(e) => panic!("scenario set_sdp: {e}"),
            },
            Command::SetLinkRate { rate: r, .. } => {
                *rate = r;
                scheduler.set_link_rate(r);
            }
            // Link state lives in the runtime; the loops query it.
            Command::LinkDown { .. } | Command::LinkUp { .. } => {}
        }
    }
}

/// Admits one arrival under the scenario's class and link state. Departed
/// classes are filtered silently (no sequence number, no probe record);
/// arrivals during a [`DownPolicy::Drop`] fault are offered and discarded
/// (an `on_drop` with buffer 0 — a fault, not a buffer limit).
fn admit_one<S: Scheduler + ?Sized, P: Probe>(
    scheduler: &mut S,
    rt: &ScenarioRuntime,
    e: &TraceEntry,
    seq: &mut u64,
    probe: &mut P,
) {
    if !rt.admits(e.class) {
        return;
    }
    let id = PacketId::single_link(*seq, e.class, e.size);
    if !rt.link_up(0) && rt.down_policy(0) == DownPolicy::Drop {
        if P::ENABLED {
            probe.on_arrival(e.at, id);
            probe.on_drop(e.at, id, scheduler.total_backlog_bytes(), 0);
        }
        *seq += 1;
        return;
    }
    if P::ENABLED {
        probe.on_arrival(e.at, id);
        probe.on_enqueue(e.at, id);
    }
    scheduler.enqueue(Packet::new(*seq, e.class, e.size, e.at));
    *seq += 1;
}

/// [`run_trace_probed`] with a perturbation timeline. Empty scenarios take
/// the stationary loop verbatim.
pub(crate) fn run_trace_scenario_probed<S, I, F, P>(
    scheduler: &mut S,
    arrivals: I,
    rate: f64,
    scenario: &Scenario,
    mut on_depart: F,
    probe: &mut P,
) where
    S: Scheduler + ?Sized,
    I: IntoIterator<Item = TraceEntry>,
    F: FnMut(&Departure),
    P: Probe,
{
    if scenario.is_empty() {
        return run_trace_probed(scheduler, arrivals, rate, on_depart, probe);
    }
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let mut rt = ScenarioRuntime::new(scenario, 1, scheduler.num_classes());
    let mut rate = rate;
    let mut arrivals = arrivals.into_iter().peekable();
    let mut free = Time::ZERO;
    let mut seq = 0u64;
    let mut values: Vec<(usize, f64)> = Vec::new();
    let mut cmds: Vec<Command> = Vec::new();
    loop {
        if scheduler.is_empty() {
            let Some(e) = arrivals.next() else { break };
            rt.apply_due(e.at, probe, |c| cmds.push(c));
            apply_commands(scheduler, &mut rate, &mut cmds);
            admit_one(scheduler, &rt, &e, &mut seq, probe);
            free = free.max(e.at);
            if scheduler.is_empty() {
                continue; // the lone arrival was filtered or dropped
            }
        }
        while let Some(e) = arrivals.next_if(|e| e.at <= free) {
            rt.apply_due(e.at, probe, |c| cmds.push(c));
            apply_commands(scheduler, &mut rate, &mut cmds);
            admit_one(scheduler, &rt, &e, &mut seq, probe);
        }
        rt.apply_due(free, probe, |c| cmds.push(c));
        apply_commands(scheduler, &mut rate, &mut cmds);
        if !rt.link_up(0) {
            // Stall until the next timeline event; the builder guarantees
            // a restoring LinkUp exists, so this always terminates.
            free = rt.next_at().expect("validated scenario restores the link");
            continue;
        }
        if scheduler.is_empty() {
            continue; // batch arrivals were all filtered or dropped
        }
        if P::ENABLED && P::WANTS_DECISION_VALUES {
            values.clear();
            scheduler.decision_values(free, &mut values);
        }
        let pkt = scheduler
            .dequeue(free)
            .expect("work-conserving scheduler with backlog must dequeue");
        let finish = free + Dur::from_ticks(tx_ticks(pkt.size, rate));
        if P::ENABLED {
            let id = PacketId::single_link(pkt.seq, pkt.class, pkt.size);
            probe.on_decision(free, scheduler.name(), id, &values);
            probe.on_depart(id, pkt.arrival, free, finish, true);
        }
        on_depart(&Departure {
            packet: pkt,
            start: free,
            finish,
        });
        free = finish;
    }
}

/// [`run_trace_lossy_probed`] with a perturbation timeline. Empty
/// scenarios take the stationary lossy loop verbatim.
///
/// Scenario semantics compose with the buffer: held arrivals during a
/// [`DownPolicy::Hold`] fault still respect `buffer_bytes` (overflow drops
/// under `mode` as usual), and fault drops ([`DownPolicy::Drop`]) are
/// counted in the report like buffer drops.
pub(crate) fn run_trace_lossy_scenario_probed<P: Probe>(
    scheduler: &mut dyn Scheduler,
    trace: &Trace,
    rate: f64,
    buffer_bytes: u64,
    mut mode: LossMode,
    scenario: &Scenario,
    probe: &mut P,
) -> LossyReport {
    if scenario.is_empty() {
        return run_trace_lossy_probed(scheduler, trace, rate, buffer_bytes, mode, probe);
    }
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let mut rt = ScenarioRuntime::new(scenario, 1, scheduler.num_classes());
    let mut rate = rate;
    let n = scheduler.num_classes();
    let mut report = LossyReport {
        arrivals: vec![0; n],
        drops: vec![0; n],
        delays: vec![Summary::new(); n],
        max_backlog_bytes: 0,
    };
    let entries = trace.entries();
    let mut next = 0usize;
    let mut free = Time::ZERO;
    let mut seq = 0u64;
    let mut values: Vec<(usize, f64)> = Vec::new();
    let mut cmds: Vec<Command> = Vec::new();

    // Admits (or drops) one arrival under the scenario and buffer policy.
    let admit = |s: &mut dyn Scheduler,
                 rt: &ScenarioRuntime,
                 e: &TraceEntry,
                 seq: &mut u64,
                 report: &mut LossyReport,
                 mode: &mut LossMode,
                 probe: &mut P| {
        if !rt.admits(e.class) {
            return;
        }
        let class = e.class as usize;
        assert!(
            u64::from(e.size) <= buffer_bytes,
            "buffer ({buffer_bytes} B) smaller than packet ({} B)",
            e.size
        );
        report.arrivals[class] += 1;
        let id = PacketId::single_link(*seq, e.class, e.size);
        *seq += 1;
        if P::ENABLED {
            probe.on_arrival(e.at, id);
        }
        if !rt.link_up(0) && rt.down_policy(0) == DownPolicy::Drop {
            report.drops[class] += 1;
            if P::ENABLED {
                probe.on_drop(e.at, id, s.total_backlog_bytes(), buffer_bytes);
            }
            return;
        }
        if let LossMode::Plr(d) = mode {
            d.on_arrival(class);
        }
        while s.total_backlog_bytes() + e.size as u64 > buffer_bytes {
            match mode {
                LossMode::TailDrop => {
                    report.drops[class] += 1;
                    if P::ENABLED {
                        probe.on_drop(e.at, id, s.total_backlog_bytes(), buffer_bytes);
                    }
                    return;
                }
                LossMode::Plr(d) => {
                    let mut candidates: Vec<usize> = (0..s.num_classes())
                        .filter(|&c| s.backlog_packets(c) > 0)
                        .collect();
                    if !candidates.contains(&class) {
                        candidates.push(class);
                    }
                    let victim = d.preview_victim(&candidates).expect("nonempty candidates");
                    if victim == class {
                        d.record_drop(class);
                        report.drops[class] += 1;
                        if P::ENABLED {
                            probe.on_drop(e.at, id, s.total_backlog_bytes(), buffer_bytes);
                        }
                        return;
                    }
                    match s.drop_newest(victim) {
                        Some(v) => {
                            d.record_drop(v.class as usize);
                            report.drops[v.class as usize] += 1;
                            if P::ENABLED {
                                let vid = PacketId::single_link(v.seq, v.class, v.size);
                                probe.on_drop(e.at, vid, s.total_backlog_bytes(), buffer_bytes);
                            }
                        }
                        None => {
                            d.record_drop(class);
                            report.drops[class] += 1;
                            if P::ENABLED {
                                probe.on_drop(e.at, id, s.total_backlog_bytes(), buffer_bytes);
                            }
                            return;
                        }
                    }
                }
            }
        }
        if P::ENABLED {
            probe.on_enqueue(e.at, id);
        }
        s.enqueue(Packet::new(*seq - 1, e.class, e.size, e.at));
    };

    loop {
        if scheduler.is_empty() {
            if next >= entries.len() {
                break;
            }
            let e = entries[next];
            next += 1;
            rt.apply_due(e.at, probe, |c| cmds.push(c));
            apply_commands(scheduler, &mut rate, &mut cmds);
            admit(scheduler, &rt, &e, &mut seq, &mut report, &mut mode, probe);
            free = free.max(e.at);
            if scheduler.is_empty() {
                continue; // the lone arrival was filtered or dropped
            }
        }
        while next < entries.len() && entries[next].at <= free {
            let e = entries[next];
            next += 1;
            rt.apply_due(e.at, probe, |c| cmds.push(c));
            apply_commands(scheduler, &mut rate, &mut cmds);
            admit(scheduler, &rt, &e, &mut seq, &mut report, &mut mode, probe);
        }
        rt.apply_due(free, probe, |c| cmds.push(c));
        apply_commands(scheduler, &mut rate, &mut cmds);
        if !rt.link_up(0) {
            free = rt.next_at().expect("validated scenario restores the link");
            continue;
        }
        report.max_backlog_bytes = report
            .max_backlog_bytes
            .max(scheduler.total_backlog_bytes());
        if P::ENABLED && P::WANTS_DECISION_VALUES {
            values.clear();
            scheduler.decision_values(free, &mut values);
        }
        let Some(pkt) = scheduler.dequeue(free) else {
            continue;
        };
        report.delays[pkt.class as usize].push(free.since(pkt.arrival).as_f64());
        let finish = free + Dur::from_ticks(tx_ticks(pkt.size, rate));
        if P::ENABLED {
            let id = PacketId::single_link(pkt.seq, pkt.class, pkt.size);
            probe.on_decision(free, scheduler.name(), id, &values);
            probe.on_depart(id, pkt.arrival, free, finish, true);
        }
        free = finish;
    }
    report
}

/// [`run_sources_probed`](crate::run_sources_probed) with a perturbation
/// timeline. Load surges are realized by wrapping each source in a
/// [`SurgedSource`] carrying its class's gap-scale breakpoints; since an
/// empty breakpoint list is the identity, sources of unperturbed classes
/// draw exactly their stationary arrivals.
#[allow(clippy::too_many_arguments)] // internal dispatch point; callers go through `Session`
pub(crate) fn run_sources_scenario_probed<S, F, P>(
    scheduler: &mut S,
    sources: &[ClassSource],
    horizon: Time,
    base_seed: u64,
    rate: f64,
    scenario: &Scenario,
    on_depart: F,
    probe: &mut P,
) where
    S: Scheduler + ?Sized,
    F: FnMut(&Departure),
    P: Probe,
{
    if scenario.is_empty() {
        let stream = MergedStream::per_source(sources.to_vec(), base_seed, horizon);
        return run_trace_probed(scheduler, stream, rate, on_depart, probe);
    }
    let surged: Vec<SurgedSource<ClassSource>> = sources
        .iter()
        .map(|s| SurgedSource::new(s.clone(), scenario.gap_scale_breakpoints(s.class())))
        .collect();
    let stream = MergedStream::per_source(surged, base_seed, horizon);
    run_trace_scenario_probed(scheduler, stream, rate, scenario, on_depart, probe);
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::DownPolicy;
    use sched::{Fcfs, SchedulerKind, Sdp};
    use telemetry::NoopProbe;

    fn trace(entries: &[(u64, u8, u32)]) -> Trace {
        Trace::from_entries(
            entries
                .iter()
                .map(|&(t, class, size)| TraceEntry {
                    at: Time::from_ticks(t),
                    class,
                    size,
                })
                .collect(),
        )
    }

    fn t(ticks: u64) -> Time {
        Time::from_ticks(ticks)
    }

    #[test]
    fn set_sdp_flips_the_winner_mid_run() {
        // At the t=100 decision the class-0 head has waited 99 and the
        // class-1 head 40: under s = [1, 2] class 0 wins (99 > 80), but
        // after the live swap to s = [1, 8] at t=50 class 1 accrues so fast
        // it overtakes (320 > 99) — same queues, same waiting times.
        let tr = trace(&[(0, 1, 100), (1, 0, 100), (60, 1, 100)]);
        let sc = Scenario::builder()
            .set_sdp(t(50), Sdp::new(&[1.0, 8.0]).unwrap())
            .build()
            .unwrap();
        let mut with = Vec::new();
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        run_trace_scenario_probed(
            s.as_mut(),
            tr.entries().iter().copied(),
            1.0,
            &sc,
            |d| with.push(d.packet.class),
            &mut NoopProbe,
        );
        let mut without = Vec::new();
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        run_trace_scenario_probed(
            s.as_mut(),
            tr.entries().iter().copied(),
            1.0,
            &Scenario::empty(),
            |d| without.push(d.packet.class),
            &mut NoopProbe,
        );
        assert_eq!(
            without,
            vec![1, 0, 1],
            "stationary WTP serves the long wait"
        );
        assert_eq!(with, vec![1, 1, 0], "reconfigured WTP promotes class 1");
    }

    #[test]
    fn set_link_rate_retimes_future_transmissions_only() {
        // 100 B at rate 1 take 100 ticks; after the doubling at t=150 they
        // take 50. The packet in flight at the switch completes at rate 1.
        let tr = trace(&[(0, 0, 100), (0, 0, 100), (0, 0, 100)]);
        let sc = Scenario::builder()
            .set_link_rate(t(150), 0, 2.0)
            .build()
            .unwrap();
        let mut finishes = Vec::new();
        let mut s = Fcfs::new(1);
        run_trace_scenario_probed(
            &mut s,
            tr.entries().iter().copied(),
            1.0,
            &sc,
            |d| finishes.push(d.finish.ticks()),
            &mut NoopProbe,
        );
        // First two at rate 1 (0→100, 100→200; the event at t=150 fires at
        // the t=100 decision? No: due events are applied at decision
        // instants, so at t=100 the rate is still 1), third at rate 2.
        assert_eq!(finishes, vec![100, 200, 250]);
    }

    #[test]
    fn link_down_hold_stalls_service_and_resumes() {
        // Link down [100, 300): the packet arriving at 150 is held and
        // serves at 300. Non-preemptive: the packet in flight at 100 — none
        // here; first arrival is during downtime.
        let tr = trace(&[(150, 0, 100), (160, 0, 100)]);
        let sc = Scenario::builder()
            .link_down(t(100), 0, DownPolicy::Hold)
            .link_up(t(300), 0)
            .build()
            .unwrap();
        let mut out = Vec::new();
        let mut s = Fcfs::new(1);
        run_trace_scenario_probed(
            &mut s,
            tr.entries().iter().copied(),
            1.0,
            &sc,
            |d| out.push((d.start.ticks(), d.finish.ticks())),
            &mut NoopProbe,
        );
        assert_eq!(out, vec![(300, 400), (400, 500)]);
    }

    #[test]
    fn link_down_drop_discards_arrivals_but_completes_in_flight() {
        // The t=0 packet is in flight when the link drops at 50 — it
        // completes (non-preemptive). The t=60 arrival is discarded; the
        // t=400 arrival (after LinkUp at 200) is served normally.
        let tr = trace(&[(0, 0, 100), (60, 0, 100), (400, 0, 100)]);
        let sc = Scenario::builder()
            .link_down(t(50), 0, DownPolicy::Drop)
            .link_up(t(200), 0)
            .build()
            .unwrap();
        let mut out = Vec::new();
        let mut s = Fcfs::new(1);
        let mut counter = telemetry::CountingProbe::new(1);
        run_trace_scenario_probed(
            &mut s,
            tr.entries().iter().copied(),
            1.0,
            &sc,
            |d| out.push(d.start.ticks()),
            &mut counter,
        );
        assert_eq!(out, vec![0, 400]);
        let report = counter.report();
        assert_eq!(report.classes[0].arrivals, 3);
        assert_eq!(report.classes[0].drops, 1);
        assert_eq!(report.scenario_events, 2);
    }

    #[test]
    fn class_leave_filters_arrivals_and_join_readmits() {
        let tr = trace(&[(0, 1, 10), (100, 1, 10), (300, 1, 10)]);
        let sc = Scenario::builder()
            .class_leave(t(50), 1)
            .class_join(t(200), 1)
            .build()
            .unwrap();
        let mut served = 0;
        let mut s = Fcfs::new(2);
        run_trace_scenario_probed(
            &mut s,
            tr.entries().iter().copied(),
            1.0,
            &sc,
            |_| served += 1,
            &mut NoopProbe,
        );
        assert_eq!(served, 2, "the t=100 arrival fell in the leave window");
    }

    #[test]
    fn lossy_scenario_flap_counts_fault_drops() {
        let tr = trace(&[(0, 0, 100), (150, 0, 100), (160, 1, 100), (500, 1, 100)]);
        let sc = Scenario::builder()
            .link_down(t(120), 0, DownPolicy::Drop)
            .link_up(t(300), 0)
            .build()
            .unwrap();
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let r = run_trace_lossy_scenario_probed(
            s.as_mut(),
            &tr,
            1.0,
            10_000,
            LossMode::TailDrop,
            &sc,
            &mut NoopProbe,
        );
        assert_eq!(r.arrivals, vec![2, 2]);
        assert_eq!(r.drops, vec![1, 1], "both downtime arrivals discarded");
        assert_eq!(r.delays[0].count() + r.delays[1].count(), 2);
    }

    #[test]
    fn streaming_scenario_surge_increases_arrivals() {
        let sources = vec![ClassSource::new(
            0,
            traffic::IatDist::deterministic(100.0).unwrap(),
            traffic::SizeDist::fixed(10),
        )];
        let sc = Scenario::builder()
            .load_surge(t(5_000), 0, 0.25)
            .build()
            .unwrap();
        let mut n_plain = 0u64;
        let mut s = Fcfs::new(1);
        run_sources_scenario_probed(
            &mut s,
            &sources,
            t(10_000),
            7,
            1.0,
            &Scenario::empty(),
            |_| n_plain += 1,
            &mut NoopProbe,
        );
        let mut n_surged = 0u64;
        let mut s = Fcfs::new(1);
        run_sources_scenario_probed(
            &mut s,
            &sources,
            t(10_000),
            7,
            1.0,
            &sc,
            |_| n_surged += 1,
            &mut NoopProbe,
        );
        // 100 arrivals stationary; the surge quarters the gap from t=5000,
        // so the second half packs ~4x the arrivals in.
        assert_eq!(n_plain, 100);
        assert_eq!(n_surged, 50 + 200);
    }

    #[test]
    #[should_panic(expected = "scenario set_sdp")]
    fn sdp_class_count_mismatch_panics_loudly() {
        let tr = trace(&[(0, 0, 10), (20, 0, 10)]);
        let sc = Scenario::builder()
            .set_sdp(t(5), Sdp::paper_default()) // 4 classes vs 2
            .build()
            .unwrap();
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        run_trace_scenario_probed(
            s.as_mut(),
            tr.entries().iter().copied(),
            1.0,
            &sc,
            |_| {},
            &mut NoopProbe,
        );
    }

    #[test]
    fn unsupported_scheduler_ignores_set_sdp() {
        // FCFS has no SDPs; the swap is a recorded no-op, not an error.
        let tr = trace(&[(0, 0, 10), (20, 0, 10)]);
        let sc = Scenario::builder()
            .set_sdp(t(5), Sdp::new(&[1.0, 1.0]).unwrap())
            .build()
            .unwrap();
        let mut s = Fcfs::new(1);
        let mut n = 0;
        run_trace_scenario_probed(
            &mut s,
            tr.entries().iter().copied(),
            1.0,
            &sc,
            |_| n += 1,
            &mut NoopProbe,
        );
        assert_eq!(n, 2);
    }
}
