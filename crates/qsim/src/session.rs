//! The unified single-link entry point.
//!
//! Historically every combination of workload (materialized trace vs live
//! sources), instrumentation (probed vs not), and buffering (lossless vs
//! lossy) had its own `run_*` function — ten entry points for one replay
//! loop. A [`Session`] composes those axes instead:
//!
//! ```
//! use qsim::Session;
//! use sched::{Sdp, SchedulerKind};
//! use simcore::Time;
//! use traffic::{Trace, TraceEntry};
//!
//! // Two same-time arrivals: WTP serves the higher class first.
//! let trace = Trace::from_entries(vec![
//!     TraceEntry { at: Time::ZERO, class: 0, size: 100 },
//!     TraceEntry { at: Time::ZERO, class: 1, size: 100 },
//! ]);
//! let mut sched = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
//! let mut order = Vec::new();
//! Session::trace(&trace, 1.0).run(sched.as_mut(), |d| order.push(d.packet.class));
//! assert_eq!(order, vec![1, 0]);
//! ```
//!
//! Optional axes chain before `run`:
//!
//! * [`probe`](Session::probe) attaches any [`telemetry::Probe`] (pass
//!   `&mut sink` to keep ownership for `finish()`);
//! * [`scenario`](Session::scenario) attaches a perturbation timeline
//!   ([`scenario::Scenario`]) — live SDP swaps, link faults, load surges;
//! * [`lossy`](Session::lossy) bounds the buffer (trace workloads only).
//!
//! Run metrics are a first-class output: [`run_metered`](Session::run_metered)
//! attaches a [`telemetry::MetricsRegistry`] and returns it alongside the
//! departures, and [`run_monitored`](Session::run_monitored) adds the
//! online [`telemetry::PddMonitor`] conformance check.
//!
//! The default configuration (no probe, empty scenario) monomorphizes to
//! exactly the historical uninstrumented loop — the golden determinism
//! tests and the perf baseline's A/B gate both pin this.

use scenario::Scenario;
use sched::Scheduler;
use simcore::Time;
use telemetry::{MetricsRegistry, MonitorConfig, NoopProbe, PddMonitor, Probe, Tee};
use traffic::{ClassSource, Trace};

use crate::lossy::{LossMode, LossyReport};
use crate::scenario_run::{
    run_sources_scenario_probed, run_trace_lossy_scenario_probed, run_trace_scenario_probed,
};
use crate::server::Departure;

/// A materialized-trace workload (replay identical input through many
/// schedulers).
#[derive(Debug)]
pub struct TraceWorkload<'a> {
    trace: &'a Trace,
}

/// A live-source workload (O(sources) memory, arrivals drawn on the fly).
#[derive(Debug)]
pub struct SourcesWorkload<'a> {
    sources: &'a [ClassSource],
    horizon: Time,
    base_seed: u64,
}

/// A composable single-link simulation run: workload × probe × scenario
/// (× buffer). See the crate docs for the axes.
#[derive(Debug)]
pub struct Session<W, P = NoopProbe> {
    workload: W,
    rate: f64,
    scenario: Scenario,
    probe: P,
}

impl<'a> Session<TraceWorkload<'a>> {
    /// Replays `trace` on a link of `rate` bytes/tick.
    pub fn trace(trace: &'a Trace, rate: f64) -> Self {
        Session {
            workload: TraceWorkload { trace },
            rate,
            scenario: Scenario::empty(),
            probe: NoopProbe,
        }
    }
}

impl<'a> Session<SourcesWorkload<'a>> {
    /// Streams `sources` until `horizon` on a link of `rate` bytes/tick,
    /// seeding source *i* with [`traffic::per_source_seed`]`(base_seed, i)`
    /// — the workload is identical to replaying
    /// [`Trace::generate_per_source`] with the same arguments.
    pub fn sources(sources: &'a [ClassSource], horizon: Time, base_seed: u64, rate: f64) -> Self {
        Session {
            workload: SourcesWorkload {
                sources,
                horizon,
                base_seed,
            },
            rate,
            scenario: Scenario::empty(),
            probe: NoopProbe,
        }
    }
}

impl<W, P: Probe> Session<W, P> {
    /// Attaches a probe observing the packet lifecycle (and scenario
    /// events). Pass `&mut sink` to keep ownership of sinks that need a
    /// `finish()` call.
    pub fn probe<Q: Probe>(self, probe: Q) -> Session<W, Q> {
        Session {
            workload: self.workload,
            rate: self.rate,
            scenario: self.scenario,
            probe,
        }
    }

    /// Attaches a perturbation timeline. An empty scenario (the default)
    /// costs nothing: the run dispatches to the stationary loop.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }
}

impl<'a, P: Probe> Session<TraceWorkload<'a>, P> {
    /// Runs the replay, invoking `on_depart` for every departure in order.
    ///
    /// # Panics
    /// Panics if the scenario contains a load surge (a prerecorded trace's
    /// arrival instants are data, not a rate process — use
    /// [`Session::sources`]) or if a scenario SDP's class count does not
    /// match the scheduler's.
    pub fn run<S: Scheduler + ?Sized>(
        mut self,
        scheduler: &mut S,
        on_depart: impl FnMut(&Departure),
    ) {
        assert!(
            !self.scenario.has_load_surge(),
            "load_surge cannot re-time a prerecorded trace; use Session::sources"
        );
        run_trace_scenario_probed(
            scheduler,
            self.workload.trace.entries().iter().copied(),
            self.rate,
            &self.scenario,
            on_depart,
            &mut self.probe,
        );
    }

    /// Bounds the shared buffer to `buffer_bytes` with drop policy `mode`,
    /// turning the run lossy (the §7 extension).
    pub fn lossy(self, buffer_bytes: u64, mode: LossMode) -> LossySession<'a, P> {
        LossySession {
            trace: self.workload.trace,
            rate: self.rate,
            scenario: self.scenario,
            probe: self.probe,
            buffer_bytes,
            mode,
        }
    }
}

impl<'a> Session<TraceWorkload<'a>> {
    /// Runs the replay with a [`MetricsRegistry`] attached and returns it
    /// — run metrics as a first-class output next to the departures.
    pub fn run_metered<S: Scheduler + ?Sized>(
        self,
        scheduler: &mut S,
        on_depart: impl FnMut(&Departure),
    ) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.probe(&mut registry).run(scheduler, on_depart);
        registry
    }

    /// Runs the replay with both a [`MetricsRegistry`] and an online
    /// [`PddMonitor`] (configured by `cfg`) attached; the monitor is
    /// finalized before it is returned.
    pub fn run_monitored<S: Scheduler + ?Sized>(
        self,
        cfg: MonitorConfig,
        scheduler: &mut S,
        on_depart: impl FnMut(&Departure),
    ) -> (MetricsRegistry, PddMonitor) {
        let mut registry = MetricsRegistry::new();
        let mut monitor = PddMonitor::new(cfg);
        self.probe(Tee(&mut registry, &mut monitor))
            .run(scheduler, on_depart);
        monitor.finish();
        (registry, monitor)
    }
}

impl<'a> Session<SourcesWorkload<'a>> {
    /// Runs the streaming replay with a [`MetricsRegistry`] attached and
    /// returns it.
    pub fn run_metered<S: Scheduler + ?Sized>(
        self,
        scheduler: &mut S,
        on_depart: impl FnMut(&Departure),
    ) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.probe(&mut registry).run(scheduler, on_depart);
        registry
    }

    /// Runs the streaming replay with both a [`MetricsRegistry`] and an
    /// online [`PddMonitor`] attached; the monitor is finalized before it
    /// is returned.
    pub fn run_monitored<S: Scheduler + ?Sized>(
        self,
        cfg: MonitorConfig,
        scheduler: &mut S,
        on_depart: impl FnMut(&Departure),
    ) -> (MetricsRegistry, PddMonitor) {
        let mut registry = MetricsRegistry::new();
        let mut monitor = PddMonitor::new(cfg);
        self.probe(Tee(&mut registry, &mut monitor))
            .run(scheduler, on_depart);
        monitor.finish();
        (registry, monitor)
    }
}

impl<'a, P: Probe> Session<SourcesWorkload<'a>, P> {
    /// Runs the streaming replay, invoking `on_depart` for every departure
    /// in order. Scenario load surges re-time the sources via
    /// [`traffic::SurgedSource`].
    pub fn run<S: Scheduler + ?Sized>(
        mut self,
        scheduler: &mut S,
        on_depart: impl FnMut(&Departure),
    ) {
        run_sources_scenario_probed(
            scheduler,
            self.workload.sources,
            self.workload.horizon,
            self.workload.base_seed,
            self.rate,
            &self.scenario,
            on_depart,
            &mut self.probe,
        );
    }
}

/// A [`Session`] with a finite buffer; built by [`Session::lossy`].
#[derive(Debug)]
pub struct LossySession<'a, P = NoopProbe> {
    trace: &'a Trace,
    rate: f64,
    scenario: Scenario,
    probe: P,
    buffer_bytes: u64,
    mode: LossMode,
}

impl<'a, P: Probe> LossySession<'a, P> {
    /// Runs the lossy replay and reports per-class arrivals, drops, and
    /// delivered-packet delay summaries.
    ///
    /// # Panics
    /// Panics under the same conditions as [`Session::run`], or if the
    /// buffer cannot hold the largest packet in the trace.
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> LossyReport {
        assert!(
            !self.scenario.has_load_surge(),
            "load_surge cannot re-time a prerecorded trace; use Session::sources"
        );
        run_trace_lossy_scenario_probed(
            scheduler,
            self.trace,
            self.rate,
            self.buffer_bytes,
            self.mode,
            &self.scenario,
            &mut self.probe,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scenario::DownPolicy;
    use sched::{SchedulerKind, Sdp};
    use traffic::{IatDist, SizeDist, TraceEntry};

    fn small_trace() -> Trace {
        Trace::from_entries(
            [
                (0u64, 0u8, 550u32),
                (10, 3, 40),
                (20, 1, 1500),
                (30, 2, 550),
            ]
            .iter()
            .map(|&(t, class, size)| TraceEntry {
                at: Time::from_ticks(t),
                class,
                size,
            })
            .collect(),
        )
    }

    #[test]
    fn default_session_equals_the_probed_loop_with_noop_probe() {
        let tr = small_trace();
        let mut via_session = Vec::new();
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        Session::trace(&tr, 1.0).run(s.as_mut(), |d| {
            via_session.push((d.packet.seq, d.start, d.finish))
        });
        let mut via_probed = Vec::new();
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        crate::run_trace_probed(
            s.as_mut(),
            tr.entries().iter().copied(),
            1.0,
            |d| via_probed.push((d.packet.seq, d.start, d.finish)),
            &mut NoopProbe,
        );
        assert_eq!(via_session, via_probed);
    }

    #[test]
    fn probe_axis_observes_the_run() {
        let tr = small_trace();
        let mut counter = telemetry::CountingProbe::new(4);
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        Session::trace(&tr, 1.0)
            .probe(&mut counter)
            .run(s.as_mut(), |_| {});
        assert_eq!(counter.report().total_departures(), 4);
    }

    #[test]
    fn lossy_axis_reports_drops() {
        // A same-instant burst is admitted before the head enters service,
        // so a 200-byte buffer holds two of the three packets.
        let tr = Trace::from_entries(vec![
            TraceEntry {
                at: Time::ZERO,
                class: 0,
                size: 100,
            },
            TraceEntry {
                at: Time::ZERO,
                class: 0,
                size: 100,
            },
            TraceEntry {
                at: Time::ZERO,
                class: 0,
                size: 100,
            },
        ]);
        let mut s = SchedulerKind::Fcfs.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let r = Session::trace(&tr, 1.0)
            .lossy(200, LossMode::TailDrop)
            .run(s.as_mut());
        assert_eq!(r.arrivals[0], 3);
        assert_eq!(r.drops[0], 1);
    }

    #[test]
    fn sources_session_equals_trace_session() {
        let sources = vec![ClassSource::new(
            0,
            IatDist::deterministic(100.0).unwrap(),
            SizeDist::fixed(50),
        )];
        let horizon = Time::from_ticks(1_000);
        let trace = Trace::generate_per_source(&mut sources.clone(), horizon, 5);
        let mut a = Vec::new();
        let mut s = SchedulerKind::Fcfs.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        Session::trace(&trace, 1.0).run(s.as_mut(), |d| a.push(d.finish));
        let mut b = Vec::new();
        let mut s = SchedulerKind::Fcfs.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        Session::sources(&sources, horizon, 5, 1.0).run(s.as_mut(), |d| b.push(d.finish));
        assert_eq!(a, b);
    }

    #[test]
    fn scenario_axis_reaches_the_lossy_path() {
        let tr = Trace::from_entries(vec![
            TraceEntry {
                at: Time::from_ticks(0),
                class: 0,
                size: 100,
            },
            TraceEntry {
                at: Time::from_ticks(200),
                class: 0,
                size: 100,
            },
        ]);
        let sc = Scenario::builder()
            .link_down(Time::from_ticks(150), 0, DownPolicy::Drop)
            .link_up(Time::from_ticks(300), 0)
            .build()
            .unwrap();
        let mut s = SchedulerKind::Fcfs.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let r = Session::trace(&tr, 1.0)
            .scenario(sc)
            .lossy(10_000, LossMode::TailDrop)
            .run(s.as_mut());
        assert_eq!(r.drops[0], 1, "the downtime arrival is a fault drop");
    }

    #[test]
    fn metered_run_returns_the_registry() {
        let tr = small_trace();
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let mut n = 0u64;
        let reg = Session::trace(&tr, 1.0).run_metered(s.as_mut(), |_| n += 1);
        assert_eq!(n, 4);
        let departures: u64 = (0..4).map(|c| reg.class_total(c).departures).sum();
        assert_eq!(departures, 4);
        assert_eq!(reg.decisions(), 4);
        assert_eq!(reg.num_links(), 1);
    }

    #[test]
    fn metered_registry_matches_counting_probe() {
        let tr = small_trace();
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let reg = Session::trace(&tr, 1.0).run_metered(s.as_mut(), |_| {});
        let mut counter = telemetry::CountingProbe::new(4);
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        Session::trace(&tr, 1.0)
            .probe(&mut counter)
            .run(s.as_mut(), |_| {});
        assert_eq!(reg.to_json(), counter.registry().to_json());
    }

    #[test]
    fn monitored_run_flags_the_engineered_miss() {
        // small_trace's class-0 packet is served with zero wait while the
        // later classes queue behind it, so pair 0 (d̄₀/d̄₁ = 0) inverts
        // against any target > 1.
        let tr = small_trace();
        let mut cfg = telemetry::MonitorConfig::new(10_000, 0.25, vec![2.0, 2.0, 2.0]);
        cfg.min_samples = 1;
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let (reg, monitor) = Session::trace(&tr, 1.0).run_monitored(cfg, s.as_mut(), |_| {});
        assert_eq!(reg.class_total(0).departures, 1);
        assert_eq!(monitor.windows_closed(), 1);
        assert!(
            monitor
                .violations()
                .iter()
                .any(|v| v.kind == telemetry::ViolationKind::Inversion),
            "expected an inversion: {:?}",
            monitor.violations()
        );
    }

    #[test]
    #[should_panic(expected = "load_surge cannot re-time a prerecorded trace")]
    fn load_surge_on_a_trace_is_rejected() {
        let tr = small_trace();
        let sc = Scenario::builder()
            .load_surge(Time::from_ticks(10), 0, 0.5)
            .build()
            .unwrap();
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        Session::trace(&tr, 1.0)
            .scenario(sc)
            .run(s.as_mut(), |_| {});
    }
}
