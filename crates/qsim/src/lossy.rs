//! Finite-buffer (lossy) single-link operation — the §7 extension.
//!
//! The paper's evaluation assumes lossless operation with large buffers and
//! ECN-regulated sources (§3) and defers coupled delay+loss differentiation
//! to future work. This module provides the first step: a shared finite
//! buffer in front of any scheduler, with either plain **tail-drop**
//! (uncontrolled loss) or the **Proportional Loss Rate** dropper, which
//! keeps per-class loss fractions ratioed to loss differentiation
//! parameters σ — the loss-side mirror of Eq. (1).
//!
//! Push-out semantics: when an arrival overflows the buffer, PLR picks the
//! class whose normalized loss fraction is furthest *below* its target and
//! removes that class's most recent packet (falling back to dropping the
//! arrival if the scheduler does not support removal).

use sched::{Packet, PlrDropper, Scheduler};
use simcore::{Dur, Time};
use stats::Summary;
use telemetry::{PacketId, Probe};
use traffic::Trace;

/// The drop policy for a lossy session ([`run_trace_lossy_probed`]).
#[derive(Debug, Clone)]
pub enum LossMode {
    /// Drop the arriving packet when the buffer is full.
    TailDrop,
    /// Proportional Loss Rate push-out with the given dropper.
    Plr(PlrDropper),
}

/// Outcome of a lossy run.
#[derive(Debug, Clone)]
pub struct LossyReport {
    /// Per-class arrival counts.
    pub arrivals: Vec<u64>,
    /// Per-class dropped-packet counts.
    pub drops: Vec<u64>,
    /// Per-class waiting-delay summaries of *delivered* packets (ticks).
    pub delays: Vec<Summary>,
    /// Largest queued byte count observed (≤ the buffer limit).
    pub max_backlog_bytes: u64,
}

impl LossyReport {
    /// Loss fraction of `class` (0 if it had no arrivals).
    pub fn loss_fraction(&self, class: usize) -> f64 {
        if self.arrivals[class] == 0 {
            0.0
        } else {
            self.drops[class] as f64 / self.arrivals[class] as f64
        }
    }

    /// Ratio of loss fractions between two classes (`None` if the
    /// denominator class lost nothing).
    pub fn loss_ratio(&self, a: usize, b: usize) -> Option<f64> {
        let fb = self.loss_fraction(b);
        (fb > 0.0).then(|| self.loss_fraction(a) / fb)
    }

    /// Total packets dropped.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }
}

/// Replays `trace` through `scheduler` on a link of `rate` bytes/tick with
/// a shared buffer of `buffer_bytes` (queued bytes only; the packet in
/// service does not occupy buffer), with a [`Probe`] observing the packet
/// lifecycle. The probe-free form is
/// `qsim::Session::trace(trace, rate).lossy(buffer_bytes, mode).run(scheduler)`.
///
/// In addition to the lossless events
/// ([`run_trace_probed`](crate::run_trace_probed)), every rejected packet
/// yields an `on_drop` record carrying the queued-byte occupancy at the
/// drop instant — for push-out (PLR) drops the victim is the *queued*
/// packet that was evicted, not the arrival that triggered it, and the
/// occupancy excludes the victim.
pub fn run_trace_lossy_probed<P: Probe>(
    scheduler: &mut dyn Scheduler,
    trace: &Trace,
    rate: f64,
    buffer_bytes: u64,
    mut mode: LossMode,
    probe: &mut P,
) -> LossyReport {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let n = scheduler.num_classes();
    let mut report = LossyReport {
        arrivals: vec![0; n],
        drops: vec![0; n],
        delays: vec![Summary::new(); n],
        max_backlog_bytes: 0,
    };
    let entries = trace.entries();
    let mut next = 0usize;
    let mut free = Time::ZERO;
    let mut seq = 0u64;
    // Scratch for the decision audit, reused across decisions.
    let mut values: Vec<(usize, f64)> = Vec::new();

    // Admits (or drops) one arrival under the buffer policy.
    let admit = |s: &mut dyn Scheduler,
                 e: &traffic::TraceEntry,
                 seq: u64,
                 report: &mut LossyReport,
                 mode: &mut LossMode,
                 probe: &mut P| {
        let class = e.class as usize;
        assert!(
            u64::from(e.size) <= buffer_bytes,
            "buffer ({buffer_bytes} B) smaller than packet ({} B)",
            e.size
        );
        report.arrivals[class] += 1;
        let id = PacketId::single_link(seq, e.class, e.size);
        if P::ENABLED {
            probe.on_arrival(e.at, id);
        }
        if let LossMode::Plr(d) = mode {
            d.on_arrival(class);
        }
        // Free space by push-out (PLR) or by dropping the arrival.
        while s.total_backlog_bytes() + e.size as u64 > buffer_bytes {
            match mode {
                LossMode::TailDrop => {
                    report.drops[class] += 1;
                    if P::ENABLED {
                        probe.on_drop(e.at, id, s.total_backlog_bytes(), buffer_bytes);
                    }
                    return;
                }
                LossMode::Plr(d) => {
                    let mut candidates: Vec<usize> = (0..s.num_classes())
                        .filter(|&c| s.backlog_packets(c) > 0)
                        .collect();
                    if !candidates.contains(&class) {
                        candidates.push(class);
                    }
                    let victim = d.preview_victim(&candidates).expect("nonempty candidates");
                    if victim == class {
                        d.record_drop(class);
                        report.drops[class] += 1;
                        if P::ENABLED {
                            probe.on_drop(e.at, id, s.total_backlog_bytes(), buffer_bytes);
                        }
                        return;
                    }
                    match s.drop_newest(victim) {
                        Some(v) => {
                            d.record_drop(v.class as usize);
                            report.drops[v.class as usize] += 1;
                            if P::ENABLED {
                                let vid = PacketId::single_link(v.seq, v.class, v.size);
                                probe.on_drop(e.at, vid, s.total_backlog_bytes(), buffer_bytes);
                            }
                        }
                        None => {
                            // Scheduler without push-out support: fall back
                            // to dropping the arrival.
                            d.record_drop(class);
                            report.drops[class] += 1;
                            if P::ENABLED {
                                probe.on_drop(e.at, id, s.total_backlog_bytes(), buffer_bytes);
                            }
                            return;
                        }
                    }
                }
            }
        }
        if P::ENABLED {
            probe.on_enqueue(e.at, id);
        }
        s.enqueue(Packet::new(seq, e.class, e.size, e.at));
    };

    loop {
        if scheduler.is_empty() {
            if next >= entries.len() {
                break;
            }
            let e = entries[next];
            next += 1;
            admit(scheduler, &e, seq, &mut report, &mut mode, probe);
            seq += 1;
            free = free.max(e.at);
            if scheduler.is_empty() {
                continue; // the lone arrival was dropped
            }
        }
        while next < entries.len() && entries[next].at <= free {
            let e = entries[next];
            next += 1;
            admit(scheduler, &e, seq, &mut report, &mut mode, probe);
            seq += 1;
        }
        report.max_backlog_bytes = report
            .max_backlog_bytes
            .max(scheduler.total_backlog_bytes());
        if P::ENABLED && P::WANTS_DECISION_VALUES {
            values.clear();
            scheduler.decision_values(free, &mut values);
        }
        let Some(pkt) = scheduler.dequeue(free) else {
            continue;
        };
        report.delays[pkt.class as usize].push(free.since(pkt.arrival).as_f64());
        let tx = ((pkt.size as f64 / rate).round() as u64).max(1);
        let finish = free + Dur::from_ticks(tx);
        if P::ENABLED {
            let id = PacketId::single_link(pkt.seq, pkt.class, pkt.size);
            probe.on_decision(free, scheduler.name(), id, &values);
            probe.on_depart(id, pkt.arrival, free, finish, true);
        }
        free = finish;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sched::{SchedulerKind, Sdp};
    use traffic::{ClassSource, IatDist, SizeDist, TraceEntry};

    /// Overloaded two-class trace (offered load ≈ 1.3 on a 1 B/tick link).
    fn overload_trace(seed: u64) -> Trace {
        let mut sources = vec![
            ClassSource::new(
                0,
                IatDist::paper_pareto(154.0).unwrap(),
                SizeDist::fixed(100),
            ),
            ClassSource::new(
                1,
                IatDist::paper_pareto(154.0).unwrap(),
                SizeDist::fixed(100),
            ),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        Trace::generate(&mut sources, Time::from_ticks(8_000_000), &mut rng)
    }

    #[test]
    fn plr_holds_the_loss_ratio() {
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let mode = LossMode::Plr(PlrDropper::new(&[2.0, 1.0]).unwrap());
        let r = crate::Session::trace(&overload_trace(3), 1.0)
            .lossy(4_000, mode)
            .run(s.as_mut());
        assert!(
            r.total_drops() > 1000,
            "need real overload, got {} drops",
            r.total_drops()
        );
        let ratio = r.loss_ratio(0, 1).expect("both classes lose");
        assert!((ratio - 2.0).abs() < 0.25, "loss ratio {ratio}");
    }

    #[test]
    fn tail_drop_does_not_differentiate_loss() {
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let r = crate::Session::trace(&overload_trace(3), 1.0)
            .lossy(4_000, LossMode::TailDrop)
            .run(s.as_mut());
        let ratio = r.loss_ratio(0, 1).expect("both classes lose");
        assert!(
            (ratio - 1.0).abs() < 0.35,
            "tail-drop loss ratio should be ~1, got {ratio}"
        );
    }

    #[test]
    fn buffer_limit_is_respected() {
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let r = crate::Session::trace(&overload_trace(5), 1.0)
            .lossy(2_000, LossMode::TailDrop)
            .run(s.as_mut());
        assert!(r.max_backlog_bytes <= 2_000);
        assert!(r.total_drops() > 0);
    }

    #[test]
    fn huge_buffer_reproduces_lossless_run() {
        let trace = overload_trace(7);
        let mut lossy = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let r = crate::Session::trace(&trace, 1.0)
            .lossy(u64::MAX, LossMode::TailDrop)
            .run(lossy.as_mut());
        assert_eq!(r.total_drops(), 0);
        let mut lossless = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let mut count = 0u64;
        crate::Session::trace(&trace, 1.0).run(lossless.as_mut(), |_| count += 1);
        assert_eq!(count, r.delays.iter().map(|d| d.count()).sum::<u64>());
    }

    #[test]
    fn plr_with_delay_differentiation_gives_coupled_service() {
        // The §7 goal in miniature: WTP spaces delays while PLR spaces
        // losses, on the same lossy link.
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let mode = LossMode::Plr(PlrDropper::new(&[2.0, 1.0]).unwrap());
        let r = crate::Session::trace(&overload_trace(9), 1.0)
            .lossy(6_000, mode)
            .run(s.as_mut());
        // Delays ordered by class...
        assert!(r.delays[0].mean() > r.delays[1].mean());
        // ...and losses too.
        assert!(r.loss_fraction(0) > r.loss_fraction(1));
    }

    #[test]
    fn drop_tail_admits_up_to_the_exact_byte_boundary() {
        // Five same-tick 100-byte packets against a 300-byte buffer: the
        // first three fill it to exactly the limit (the head has not yet
        // entered service when the burst is admitted), the rest drop.
        let burst: Vec<TraceEntry> = (0..5)
            .map(|_| TraceEntry {
                at: Time::ZERO,
                class: 0,
                size: 100,
            })
            .collect();
        let trace = Trace::from_entries(burst);
        let mut s = SchedulerKind::Fcfs.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let r = crate::Session::trace(&trace, 1.0)
            .lossy(300, LossMode::TailDrop)
            .run(s.as_mut());
        assert_eq!(r.drops[0], 2);
        assert_eq!(r.delays[0].count(), 3);
        assert_eq!(
            r.max_backlog_bytes, 300,
            "buffer must fill to the exact limit"
        );

        // One byte less of buffer and the third packet no longer fits.
        let mut s = SchedulerKind::Fcfs.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let trace = Trace::from_entries(
            (0..5)
                .map(|_| TraceEntry {
                    at: Time::ZERO,
                    class: 0,
                    size: 100,
                })
                .collect(),
        );
        let r = crate::Session::trace(&trace, 1.0)
            .lossy(299, LossMode::TailDrop)
            .run(s.as_mut());
        assert_eq!(r.drops[0], 3);
        assert_eq!(r.max_backlog_bytes, 200);
    }

    /// Overloaded four-class trace, uniform 100-byte packets, ρ ≈ 1.3.
    fn overload_trace_4(seed: u64) -> Trace {
        let mut sources: Vec<ClassSource> = (0..4u8)
            .map(|c| {
                ClassSource::new(
                    c,
                    IatDist::paper_pareto(308.0).unwrap(),
                    SizeDist::fixed(100),
                )
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        Trace::generate(&mut sources, Time::from_ticks(4_000_000), &mut rng)
    }

    #[test]
    fn plr_ratios_hold_across_schedulers_under_overload() {
        // The PLR dropper sits in front of the scheduler, so the σ-ratioed
        // loss fractions must emerge regardless of the service order
        // behind it (§7: loss and delay differentiation compose).
        for kind in [SchedulerKind::Fcfs, SchedulerKind::Wtp, SchedulerKind::Bpr] {
            let mut s = kind.build(&Sdp::paper_default(), 1.0);
            let mode = LossMode::Plr(PlrDropper::new(&[8.0, 4.0, 2.0, 1.0]).unwrap());
            let r = crate::Session::trace(&overload_trace_4(13), 1.0)
                .lossy(8_000, mode)
                .run(s.as_mut());
            assert!(r.total_drops() > 2_000, "{}: weak overload", kind.name());
            for c in 0..3 {
                let ratio = r
                    .loss_ratio(c, c + 1)
                    .unwrap_or_else(|| panic!("{}: class {} lost nothing", kind.name(), c + 1));
                assert!(
                    (ratio - 2.0).abs() < 0.5,
                    "{}: loss ratio {}/{} = {ratio}",
                    kind.name(),
                    c,
                    c + 1
                );
            }
        }
    }

    #[test]
    fn unbounded_buffer_is_lossless_for_every_scheduler() {
        let trace = overload_trace_4(17);
        let total = trace.entries().len() as u64;
        for kind in SchedulerKind::ALL {
            for mode in [
                LossMode::TailDrop,
                LossMode::Plr(PlrDropper::new(&[8.0, 4.0, 2.0, 1.0]).unwrap()),
            ] {
                let mut s = kind.build(&Sdp::paper_default(), 1.0);
                let r = crate::Session::trace(&trace, 1.0)
                    .lossy(u64::MAX, mode)
                    .run(s.as_mut());
                assert_eq!(
                    r.total_drops(),
                    0,
                    "{} dropped with infinite buffer",
                    kind.name()
                );
                assert_eq!(
                    r.delays.iter().map(|d| d.count()).sum::<u64>(),
                    total,
                    "{} lost packets without dropping them",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn probed_lossy_run_reports_drops_with_occupancy() {
        let mut s = SchedulerKind::Wtp.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        let mut probe = telemetry::CountingProbe::new(2);
        let r = run_trace_lossy_probed(
            s.as_mut(),
            &overload_trace(3),
            1.0,
            4_000,
            LossMode::TailDrop,
            &mut probe,
        );
        let report = probe.report();
        // The probe's ledger agrees with the report's, per class.
        for c in 0..2 {
            assert_eq!(report.classes[c].arrivals, r.arrivals[c]);
            assert_eq!(report.classes[c].drops, r.drops[c]);
            assert_eq!(report.classes[c].departures, r.delays[c].count());
        }
        assert!(report.total_drops() > 1000);
        // Gauges saw the buffer pressure; no single class ever exceeded it.
        assert!(report.classes.iter().any(|c| c.backlog_high_water > 0));
        for c in &report.classes {
            assert!(c.backlog_high_water as u64 <= 4_000);
        }
    }

    #[test]
    #[should_panic(expected = "buffer")]
    fn buffer_smaller_than_packet_panics() {
        let mut s = SchedulerKind::Fcfs.build(&Sdp::new(&[1.0, 2.0]).unwrap(), 1.0);
        crate::Session::trace(&overload_trace(1), 1.0)
            .lossy(10, LossMode::TailDrop)
            .run(s.as_mut());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use traffic::TraceEntry;

        fn arrivals_strategy() -> impl Strategy<Value = Vec<(u64, u8, u32)>> {
            prop::collection::vec(
                (
                    0u64..50_000,
                    0u8..4,
                    prop_oneof![Just(40u32), Just(550), Just(1500)],
                ),
                1..300,
            )
            .prop_map(|mut v| {
                v.sort_by_key(|e| e.0);
                v
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Per-class packet conservation under any buffer size and both
            /// drop policies: arrivals = delivered + dropped, and the buffer
            /// bound is never exceeded.
            #[test]
            fn prop_lossy_conserves_packets(
                arrivals in arrivals_strategy(),
                buffer_kb in 2u64..64,
                plr in proptest::bool::ANY,
            ) {
                let trace = Trace::from_entries(
                    arrivals
                        .iter()
                        .map(|&(t, c, s)| TraceEntry {
                            at: Time::from_ticks(t),
                            class: c,
                            size: s,
                        })
                        .collect(),
                );
                let buffer = buffer_kb * 1024;
                for kind in [SchedulerKind::Wtp, SchedulerKind::Fcfs, SchedulerKind::Bpr] {
                    let mode = if plr {
                        LossMode::Plr(PlrDropper::new(&[4.0, 3.0, 2.0, 1.0]).unwrap())
                    } else {
                        LossMode::TailDrop
                    };
                    let mut s = kind.build(&Sdp::paper_default(), 1.0);
                    let r = crate::Session::trace(&trace, 1.0).lossy(buffer, mode).run(s.as_mut());
                    prop_assert!(r.max_backlog_bytes <= buffer);
                    let mut per_class_arrivals = [0u64; 4];
                    for &(_, c, _) in &arrivals {
                        per_class_arrivals[c as usize] += 1;
                    }
                    for (c, &expected) in per_class_arrivals.iter().enumerate() {
                        prop_assert_eq!(
                            r.arrivals[c],
                            expected,
                            "{} arrival count class {}",
                            kind.name(),
                            c
                        );
                        prop_assert_eq!(
                            r.arrivals[c],
                            r.delays[c].count() + r.drops[c],
                            "{} conservation broke for class {}",
                            kind.name(),
                            c
                        );
                    }
                    prop_assert!(s.is_empty(), "{} left a backlog", kind.name());
                }
            }
        }
    }
}
