//! The Fig. 4 / Fig. 5 harness: microscopic views of per-class delays.
//!
//! View I (Figs. 4a/5a): per-class average queueing delay over consecutive
//! 30-p-unit intervals across a long window. View II (Figs. 4b/5b): the
//! queueing delay of every individual packet, by departure time, across a
//! short overloaded window — the view in which BPR's sawtooth noise is
//! visible while WTP tracks the proportional spacing smoothly.

use sched::{SchedulerKind, Sdp};
use simcore::Time;
use stats::IntervalSeries;

use crate::experiment::Experiment;

/// Configuration of the microscopic study (3 classes, s = 1, 2, 4,
/// ρ = 0.95 in the paper).
#[derive(Debug, Clone)]
pub struct Microscope {
    /// The traffic setup. The paper uses three classes here.
    pub base: Experiment,
    /// Width of view-I intervals, in ticks.
    pub view1_interval_ticks: u64,
}

/// The two microscopic views plus summary roughness numbers.
#[derive(Debug, Clone)]
pub struct MicroViews {
    /// The scheduler measured.
    pub kind: SchedulerKind,
    /// View I: `(interval_start_ticks, per-class average delay)` rows.
    pub view1: Vec<(u64, Vec<Option<f64>>)>,
    /// View II: `(departure_ticks, class, delay_ticks)` per packet.
    pub view2: Vec<(u64, u8, f64)>,
    /// Per-class roughness: mean |Δdelay| between consecutive departures of
    /// the same class, normalized by that class's mean delay. BPR's
    /// sawtooth makes this large; WTP keeps it small.
    pub roughness: Vec<f64>,
}

impl Microscope {
    /// The paper's Fig. 4/5 setup: 3 classes with s = 1, 2, 4, equal class
    /// loads at ρ = 0.95, view-I intervals of 30 p-units.
    pub fn paper(p_units: u64, seed: u64) -> Self {
        let p = traffic::PAPER_MEAN_PACKET_BYTES as u64;
        let sdp = Sdp::new(&[1.0, 2.0, 4.0]).expect("static");
        let mut base = Experiment::paper(0.95, sdp, p_units, vec![seed]);
        base.class_fractions = vec![0.4, 0.3, 0.3];
        Microscope {
            base,
            view1_interval_ticks: 30 * p,
        }
    }

    /// Runs one scheduler, producing both views over the whole run.
    pub fn run(&self, kind: SchedulerKind) -> MicroViews {
        let seed = self.base.seeds[0];
        let trace = self.base.trace_for_seed(seed);
        let n = self.base.sdp.num_classes();
        let mut series = IntervalSeries::new(n, self.view1_interval_ticks);
        let mut view2 = Vec::new();
        let warmup = Time::from_ticks(self.base.warmup_ticks);
        let mut last_delay: Vec<Option<f64>> = vec![None; n];
        let mut rough_sum = vec![0.0f64; n];
        let mut rough_cnt = vec![0u64; n];
        let mut delay_sum = vec![0.0f64; n];
        let mut delay_cnt = vec![0u64; n];
        let mut s = kind.build(&self.base.sdp, 1.0);
        crate::Session::trace(&trace, 1.0).run(s.as_mut(), |d| {
            if d.start < warmup {
                return;
            }
            let c = d.packet.class as usize;
            let w = d.wait().as_f64();
            series.record(d.start, c, w);
            view2.push((d.start.ticks(), d.packet.class, w));
            if let Some(prev) = last_delay[c] {
                rough_sum[c] += (w - prev).abs();
                rough_cnt[c] += 1;
            }
            last_delay[c] = Some(w);
            delay_sum[c] += w;
            delay_cnt[c] += 1;
        });
        let view1 = series
            .iter_averages()
            .enumerate()
            .map(|(k, avgs)| (k as u64 * self.view1_interval_ticks, avgs))
            .collect();
        let roughness = (0..n)
            .map(|c| {
                if rough_cnt[c] == 0 || delay_cnt[c] == 0 {
                    return 0.0;
                }
                let mean_delay = delay_sum[c] / delay_cnt[c] as f64;
                if mean_delay <= 0.0 {
                    0.0
                } else {
                    (rough_sum[c] / rough_cnt[c] as f64) / mean_delay
                }
            })
            .collect();
        MicroViews {
            kind,
            view1,
            view2,
            roughness,
        }
    }
}

impl MicroViews {
    /// Mean roughness across classes — the scalar "noise" figure.
    pub fn mean_roughness(&self) -> f64 {
        if self.roughness.is_empty() {
            0.0
        } else {
            self.roughness.iter().sum::<f64>() / self.roughness.len() as f64
        }
    }

    /// Extracts the view-II rows inside `[from, to)` ticks — the paper
    /// plots a ~1000-p-unit overloaded window.
    pub fn view2_window(&self, from: u64, to: u64) -> Vec<(u64, u8, f64)> {
        self.view2
            .iter()
            .copied()
            .filter(|&(t, _, _)| t >= from && t < to)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bpr_is_noisier_than_wtp() {
        let m = Microscope::paper(12_000, 7);
        let wtp = m.run(SchedulerKind::Wtp);
        let bpr = m.run(SchedulerKind::Bpr);
        assert!(
            bpr.mean_roughness() > wtp.mean_roughness(),
            "BPR roughness {} should exceed WTP roughness {}",
            bpr.mean_roughness(),
            wtp.mean_roughness()
        );
    }

    #[test]
    fn views_are_populated_and_windowed() {
        let m = Microscope::paper(4_000, 1);
        let v = m.run(SchedulerKind::Wtp);
        assert!(!v.view1.is_empty());
        assert!(!v.view2.is_empty());
        let (lo, hi) = (v.view2[0].0, v.view2[v.view2.len() - 1].0);
        let win = v.view2_window(lo, lo + (hi - lo) / 2);
        assert!(!win.is_empty() && win.len() < v.view2.len());
    }

    #[test]
    fn class_delay_ordering_holds_in_view1_averages() {
        let m = Microscope::paper(12_000, 3);
        let v = m.run(SchedulerKind::Wtp);
        // Count intervals where the ordering d0 >= d1 >= d2 holds among
        // fully active intervals; it should be the vast majority.
        let mut ok = 0;
        let mut total = 0;
        for (_, avgs) in &v.view1 {
            if let (Some(d0), Some(d1), Some(d2)) = (avgs[0], avgs[1], avgs[2]) {
                total += 1;
                if d0 >= d1 && d1 >= d2 {
                    ok += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            ok as f64 / total as f64 > 0.6,
            "ordering held in only {ok}/{total} intervals"
        );
    }
}
