//! The Fig. 3 harness: short-timescale R_D percentiles.

use sched::SchedulerKind;
use simcore::Time;
use stats::{IntervalSeries, Percentiles, RdCollector};
use traffic::Trace;

use crate::experiment::Experiment;

/// Configuration for the short-timescale study: a base experiment plus a
/// list of monitoring timescales τ, expressed in p-units.
#[derive(Debug, Clone)]
pub struct ShortTimescale {
    /// The traffic/SDP/seed setup (utilization 0.95 in the paper).
    pub base: Experiment,
    /// Monitoring timescales in p-units (the paper: 10, 100, 1000, 10000).
    pub taus_punits: Vec<u64>,
}

/// R_D percentiles for one (scheduler, τ) combination.
#[derive(Debug, Clone)]
pub struct TimescaleResult {
    /// The scheduler measured.
    pub kind: SchedulerKind,
    /// Monitoring timescale in p-units.
    pub tau_punits: u64,
    /// Five-number summary of R_D over all defined intervals:
    /// [5 %, 25 %, 50 %, 75 %, 95 %].
    pub five_number: [f64; 5],
    /// Number of intervals with a defined R_D.
    pub intervals: usize,
}

impl ShortTimescale {
    /// The paper's Fig. 3 setup at ρ = 0.95 with SDP ratio 2.
    pub fn paper(p_units: u64, seeds: Vec<u64>) -> Self {
        ShortTimescale {
            base: Experiment::paper(0.95, sched::Sdp::paper_default(), p_units, seeds),
            taus_punits: vec![10, 100, 1000, 10_000],
        }
    }

    /// Runs one scheduler, returning one result per τ.
    ///
    /// Implemented as the canonical shard pipeline — each seed measured by
    /// [`run_seed`](Self::run_seed), partials folded by
    /// [`finalize`](Self::finalize) in seed order — so a multi-process run
    /// that ships per-seed partials between workers reproduces this
    /// bit-for-bit.
    pub fn run(&self, kind: SchedulerKind) -> Vec<TimescaleResult> {
        let per_seed: Vec<Vec<Vec<f64>>> = self
            .base
            .seeds
            .iter()
            .map(|&seed| self.run_seed(kind, seed))
            .collect();
        self.finalize(kind, &per_seed)
    }

    /// Measures **one seed**: the defined R_D values per τ (outer index =
    /// τ, in [`taus_punits`](Self::taus_punits) order; inner = interval
    /// order) — the shard partial of the Fig. 3 cell.
    pub fn run_seed(&self, kind: SchedulerKind, seed: u64) -> Vec<Vec<f64>> {
        let p = traffic::PAPER_MEAN_PACKET_BYTES as u64;
        let n = self.base.sdp.num_classes();
        let trace: Trace = self.base.trace_for_seed(seed);
        let mut series: Vec<IntervalSeries> = self
            .taus_punits
            .iter()
            .map(|&tau| IntervalSeries::new(n, tau * p))
            .collect();
        let warmup = Time::from_ticks(self.base.warmup_ticks);
        let mut s = kind.build(&self.base.sdp, 1.0);
        crate::Session::trace(&trace, 1.0).run(s.as_mut(), |d| {
            if d.start >= warmup {
                for ser in series.iter_mut() {
                    ser.record(d.start, d.packet.class as usize, d.wait().as_f64());
                }
            }
        });
        series
            .iter()
            .map(|ser| {
                let mut coll = RdCollector::new();
                for avgs in ser.iter_averages() {
                    coll.push_interval(&avgs);
                }
                coll.values().to_vec()
            })
            .collect()
    }

    /// Folds per-seed partials (one [`run_seed`](Self::run_seed) output
    /// per seed, **in seed order**) into the final per-τ percentile
    /// results. `run(kind) == finalize(kind, seeds.map(run_seed))`,
    /// bit-for-bit.
    pub fn finalize(
        &self,
        kind: SchedulerKind,
        per_seed: &[Vec<Vec<f64>>],
    ) -> Vec<TimescaleResult> {
        self.taus_punits
            .iter()
            .enumerate()
            .map(|(ti, &tau)| {
                let mut coll = RdCollector::new();
                for seed_values in per_seed {
                    for &rd in &seed_values[ti] {
                        coll.push_value(rd);
                    }
                }
                let intervals = coll.count();
                let p: Percentiles = coll.into_percentiles();
                TimescaleResult {
                    kind,
                    tau_punits: tau,
                    five_number: p.five_number().unwrap_or([0.0; 5]),
                    intervals,
                }
            })
            .collect()
    }
}

impl TimescaleResult {
    /// Inter-quartile spread (75 % − 25 %) — the "tightness" of the
    /// short-timescale differentiation.
    pub fn iqr(&self) -> f64 {
        self.five_number[3] - self.five_number[1]
    }

    /// Median R_D.
    pub fn median(&self) -> f64 {
        self.five_number[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShortTimescale {
        let mut st = ShortTimescale::paper(8_000, vec![3]);
        st.taus_punits = vec![10, 1000];
        st
    }

    #[test]
    fn longer_timescales_tighten_rd_for_wtp() {
        let st = small();
        let results = st.run(SchedulerKind::Wtp);
        assert_eq!(results.len(), 2);
        let (short, long) = (&results[0], &results[1]);
        assert!(short.intervals > long.intervals);
        assert!(
            long.iqr() <= short.iqr() + 1e-9,
            "IQR should shrink with τ: short {} vs long {}",
            short.iqr(),
            long.iqr()
        );
    }

    #[test]
    fn medians_are_near_target_at_heavy_load() {
        let st = small();
        for kind in [SchedulerKind::Wtp, SchedulerKind::Bpr] {
            let results = st.run(kind);
            let long = &results[1];
            assert!(
                (long.median() - 2.0).abs() < 0.8,
                "{} median {} at τ=1000",
                kind.name(),
                long.median()
            );
        }
    }

    #[test]
    fn wtp_is_tighter_than_bpr_at_short_timescales() {
        let st = small();
        let wtp = &st.run(SchedulerKind::Wtp)[0];
        let bpr = &st.run(SchedulerKind::Bpr)[0];
        assert!(
            wtp.iqr() < bpr.iqr() * 1.3,
            "WTP IQR {} vs BPR IQR {}",
            wtp.iqr(),
            bpr.iqr()
        );
    }
}
