//! Streaming (constant-memory) single-link simulation.
//!
//! [`run_trace`](crate::run_trace) needs the whole trace in memory, which
//! is ideal for scheduler comparisons on identical input but wasteful for
//! very long single-scheduler runs. This runner pulls arrivals from live
//! [`ClassSource`]s instead, merging them on the fly; with
//! per-source seeding it reproduces **exactly** the workload of
//! [`traffic::Trace::generate_per_source`], so the two paths are interchangeable
//! (and tested to be).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{Packet, Scheduler};
use simcore::{Dur, Time};
use traffic::{per_source_seed, ClassSource};

use crate::server::Departure;

/// One source's pending arrival in the merge.
struct Pending {
    at: Time,
    size: u32,
    class: u8,
    /// Source index — the tie-break, matching the stable sort of
    /// `Trace::from_entries`.
    index: usize,
    rng: StdRng,
    source: ClassSource,
    exhausted: bool,
}

/// Replays live sources through `scheduler` until `horizon` (arrivals
/// after the horizon are discarded), on a link of `rate` bytes/tick.
///
/// `base_seed` derives one RNG per source exactly as
/// [`traffic::Trace::generate_per_source`] does, so for the same sources, horizon
/// and seed the departures equal those of the trace-based path.
pub fn run_sources(
    scheduler: &mut dyn Scheduler,
    sources: &[ClassSource],
    horizon: Time,
    base_seed: u64,
    rate: f64,
    mut on_depart: impl FnMut(&Departure),
) {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let mut pendings: Vec<Pending> = sources
        .iter()
        .enumerate()
        .map(|(index, src)| {
            let mut p = Pending {
                at: Time::ZERO,
                size: 0,
                class: src.class(),
                index,
                rng: StdRng::seed_from_u64(per_source_seed(base_seed, index)),
                source: src.clone(),
                exhausted: false,
            };
            advance(&mut p, horizon);
            p
        })
        .collect();

    let mut free = Time::ZERO;
    let mut seq = 0u64;
    loop {
        if scheduler.is_empty() {
            // Pull the earliest pending arrival (tie-break on source index).
            let Some(next) = earliest(&pendings) else {
                break;
            };
            let p = &mut pendings[next];
            scheduler.enqueue(Packet::new(seq, p.class, p.size, p.at));
            seq += 1;
            free = free.max(p.at);
            advance(p, horizon);
        }
        // Enqueue everything arriving at or before the decision instant.
        while let Some(next) = earliest(&pendings) {
            if pendings[next].at > free {
                break;
            }
            let p = &mut pendings[next];
            scheduler.enqueue(Packet::new(seq, p.class, p.size, p.at));
            seq += 1;
            advance(p, horizon);
        }
        let pkt = scheduler
            .dequeue(free)
            .expect("backlogged scheduler must dequeue");
        let tx = ((pkt.size as f64 / rate).round() as u64).max(1);
        let finish = free + Dur::from_ticks(tx);
        on_depart(&Departure {
            packet: pkt,
            start: free,
            finish,
        });
        free = finish;
    }
}

fn advance(p: &mut Pending, horizon: Time) {
    let (at, size) = p.source.next_arrival(&mut p.rng);
    if at > horizon {
        p.exhausted = true;
    } else {
        p.at = at;
        p.size = size;
    }
}

fn earliest(pendings: &[Pending]) -> Option<usize> {
    pendings
        .iter()
        .filter(|p| !p.exhausted)
        .min_by_key(|p| (p.at, p.index))
        .map(|p| p.index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{Sdp, SchedulerKind};
    use traffic::{IatDist, LoadPlan, SizeDist, Trace};

    fn paper_sources(rho: f64) -> Vec<ClassSource> {
        LoadPlan::paper_study_a(rho)
            .unwrap()
            .pareto_sources()
            .unwrap()
    }

    #[test]
    fn streaming_equals_trace_replay() {
        let horizon = Time::from_ticks(2_000_000);
        let sources = paper_sources(0.9);
        // Trace path.
        let mut src_copy = sources.clone();
        let trace = Trace::generate_per_source(&mut src_copy, horizon, 21);
        let mut s1 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let mut trace_deps = Vec::new();
        crate::run_trace(s1.as_mut(), &trace, 1.0, |d| {
            trace_deps.push((d.packet.class, d.packet.arrival, d.start));
        });
        // Streaming path.
        let mut s2 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let mut stream_deps = Vec::new();
        run_sources(s2.as_mut(), &sources, horizon, 21, 1.0, |d| {
            stream_deps.push((d.packet.class, d.packet.arrival, d.start));
        });
        assert_eq!(trace_deps.len(), stream_deps.len());
        assert_eq!(trace_deps, stream_deps);
    }

    #[test]
    fn streaming_handles_single_source() {
        let sources = vec![ClassSource::new(
            0,
            IatDist::deterministic(100.0).unwrap(),
            SizeDist::fixed(50),
        )];
        let mut s = SchedulerKind::Fcfs.build(&Sdp::new(&[1.0, 1.0]).unwrap(), 1.0);
        let mut count = 0;
        run_sources(s.as_mut(), &sources, Time::from_ticks(1_000), 0, 1.0, |d| {
            count += 1;
            assert_eq!(d.wait().ticks(), 0); // load 0.5, deterministic: no queueing
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn empty_sources_do_nothing() {
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let mut count = 0;
        run_sources(s.as_mut(), &[], Time::from_ticks(100), 0, 1.0, |_| count += 1);
        assert_eq!(count, 0);
    }
}
