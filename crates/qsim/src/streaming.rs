//! Streaming (constant-memory) single-link simulation.
//!
//! Trace replay needs the whole trace in memory, which is ideal for
//! scheduler comparisons on identical input but wasteful for
//! very long single-scheduler runs. This runner pulls arrivals from live
//! [`ClassSource`]s instead — a [`traffic::MergedStream`] k-way merge fed
//! straight into the generic replay loop
//! ([`run_trace_on`](crate::run_trace_on)) — so memory stays O(sources)
//! regardless of horizon. With per-source seeding it reproduces **exactly**
//! the workload of [`traffic::Trace::generate_per_source`], so the two
//! paths are interchangeable (and tested to be).

use sched::Scheduler;
use simcore::Time;
use telemetry::Probe;
use traffic::{ClassSource, MergedStream};

use crate::server::{run_trace_probed, Departure};

/// Replays live sources through `scheduler` until `horizon` (arrivals
/// after the horizon are discarded), on a link of `rate` bytes/tick, with
/// a [`Probe`] observing the packet lifecycle. The probe-free front door
/// is `qsim::Session::sources(sources, horizon, base_seed, rate)`.
///
/// `base_seed` derives one RNG per source exactly as
/// [`traffic::Trace::generate_per_source`] does, so for the same sources,
/// horizon and seed the departures equal those of the trace-based path.
/// This is the `dyn` entry point; call
/// [`run_trace_on`](crate::run_trace_on) with a [`MergedStream`] directly
/// for a fully monomorphized loop.
///
/// Emits exactly the event stream of
/// [`run_trace_probed`](crate::run_trace_probed) on the equivalent
/// materialized trace — the golden determinism tests pin the two JSONL
/// exports byte-for-byte.
pub fn run_sources_probed<P: Probe>(
    scheduler: &mut dyn Scheduler,
    sources: &[ClassSource],
    horizon: Time,
    base_seed: u64,
    rate: f64,
    on_depart: impl FnMut(&Departure),
    probe: &mut P,
) {
    let stream = MergedStream::per_source(sources.to_vec(), base_seed, horizon);
    run_trace_probed(scheduler, stream, rate, on_depart, probe);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{SchedulerKind, Sdp};
    use traffic::{IatDist, LoadPlan, SizeDist, Trace};

    fn paper_sources(rho: f64) -> Vec<ClassSource> {
        LoadPlan::paper_study_a(rho)
            .unwrap()
            .pareto_sources()
            .unwrap()
    }

    #[test]
    fn streaming_equals_trace_replay() {
        let horizon = Time::from_ticks(2_000_000);
        let sources = paper_sources(0.9);
        // Trace path.
        let mut src_copy = sources.clone();
        let trace = Trace::generate_per_source(&mut src_copy, horizon, 21);
        let mut s1 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let mut trace_deps = Vec::new();
        crate::Session::trace(&trace, 1.0).run(s1.as_mut(), |d| {
            trace_deps.push((d.packet.class, d.packet.arrival, d.start));
        });
        // Streaming path.
        let mut s2 = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let mut stream_deps = Vec::new();
        crate::Session::sources(&sources, horizon, 21, 1.0).run(s2.as_mut(), |d| {
            stream_deps.push((d.packet.class, d.packet.arrival, d.start));
        });
        assert_eq!(trace_deps.len(), stream_deps.len());
        assert_eq!(trace_deps, stream_deps);
    }

    #[test]
    fn streaming_handles_single_source() {
        let sources = vec![ClassSource::new(
            0,
            IatDist::deterministic(100.0).unwrap(),
            SizeDist::fixed(50),
        )];
        let mut s = SchedulerKind::Fcfs.build(&Sdp::new(&[1.0, 1.0]).unwrap(), 1.0);
        let mut count = 0;
        crate::Session::sources(&sources, Time::from_ticks(1_000), 0, 1.0).run(s.as_mut(), |d| {
            count += 1;
            assert_eq!(d.wait().ticks(), 0); // load 0.5, deterministic: no queueing
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn empty_sources_do_nothing() {
        let mut s = SchedulerKind::Wtp.build(&Sdp::paper_default(), 1.0);
        let mut count = 0;
        crate::Session::sources(&[], Time::from_ticks(100), 0, 1.0).run(s.as_mut(), |_| count += 1);
        assert_eq!(count, 0);
    }
}
