//! # qsim — the single-link class-based queueing simulator (Study A)
//!
//! Reproduces the §5 experimental setup: one work-conserving link served by
//! a configurable scheduler, N packet sources (one per class) with Pareto
//! interarrivals and the paper's trimodal packet sizes.
//!
//! The flow is deliberately trace-based: a [`traffic::Trace`] is generated
//! once per seed and replayed through every scheduler under test, so
//! scheduler comparisons (and the Eq. (7) feasibility replays) see
//! *identical* input.
//!
//! * [`Session`] — the unified entry point: workload (trace or live
//!   sources) × probe × scenario × buffer, one builder chain.
//! * [`run_trace_on`] / [`run_trace_probed`] — the generic (monomorphized)
//!   replay engine underneath (1 tick = 1 byte at link rate 1, or any rate
//!   you pass), taking any scheduler and any arrival iterator (e.g. a
//!   streaming [`traffic::MergedStream`]) with static dispatch.
//! * Dynamic scenarios ([`scenario::Scenario`]) attach to any session:
//!   live SDP reconfiguration, link-rate changes, link faults, class
//!   joins/leaves, and load surges, with one shared dispatch point.
//! * [`Experiment`] — the Fig. 1/Fig. 2 harness: long-run per-class average
//!   delays and successive-class ratios, averaged over seeds.
//! * [`ShortTimescale`] — the Fig. 3 harness: R_D percentiles per
//!   monitoring timescale τ.
//! * [`Microscope`] — the Fig. 4/Fig. 5 harness: microscopic views I
//!   (interval averages) and II (per-packet delays), plus a roughness
//!   metric quantifying BPR's sawtooth noise.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod experiment;
mod lossy;
mod micro;
mod scenario_run;
mod server;
mod session;
mod shortts;
mod streaming;

pub use experiment::{average_rows, Experiment, ExperimentResult, SeedResult};
pub use lossy::{run_trace_lossy_probed, LossMode, LossyReport};
pub use micro::{MicroViews, Microscope};
pub use server::{run_trace_on, run_trace_probed, Departure};
pub use session::{LossySession, Session, SourcesWorkload, TraceWorkload};
pub use shortts::{ShortTimescale, TimescaleResult};
pub use streaming::run_sources_probed;
