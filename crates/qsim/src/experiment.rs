//! The Fig. 1 / Fig. 2 harness: long-run average-delay ratios.

use sched::{Scheduler, SchedulerKind, SchedulerVisitor, Sdp};
use simcore::Time;
use stats::{P2Quantile, Summary};
use telemetry::{NoopProbe, Probe};
use traffic::{ClassSource, LoadPlan, MergedStream, SizeDist, Trace, TraceEntry};

use crate::server::run_trace_probed;

/// Configuration of one Study-A experiment point.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Target aggregate utilization ρ.
    pub utilization: f64,
    /// Per-class load fractions (sum to 1); the paper's default is
    /// 40/30/20/10 %.
    pub class_fractions: Vec<f64>,
    /// Scheduler Differentiation Parameters.
    pub sdp: Sdp,
    /// Simulation horizon in ticks (the paper runs 10⁶ time units per
    /// seed; 1 p-unit = 441 ticks here).
    pub horizon_ticks: u64,
    /// Departures before this time are discarded (warm-up).
    pub warmup_ticks: u64,
    /// Seeds to average over (the paper uses ten).
    pub seeds: Vec<u64>,
}

impl Experiment {
    /// The paper's Study-A defaults at the given utilization, scaled by
    /// `p_units` mean-packet-transmission-times of simulated horizon.
    pub fn paper(utilization: f64, sdp: Sdp, p_units: u64, seeds: Vec<u64>) -> Self {
        let p = traffic::PAPER_MEAN_PACKET_BYTES as u64;
        Experiment {
            utilization,
            class_fractions: vec![0.4, 0.3, 0.2, 0.1],
            sdp,
            horizon_ticks: p_units * p,
            warmup_ticks: (p_units / 20) * p,
            seeds,
        }
    }

    fn plan(&self) -> LoadPlan {
        LoadPlan::new(
            1.0,
            self.utilization,
            &self.class_fractions,
            SizeDist::paper(),
        )
        .expect("validated experiment parameters")
    }

    /// Generates the arrival trace for one seed.
    ///
    /// Seeding is per-source ([`Trace::generate_per_source`]), so this
    /// materializes exactly the workload that [`Experiment::arrivals_for_seed`]
    /// streams — the two are interchangeable inputs to the replay loop.
    pub fn trace_for_seed(&self, seed: u64) -> Trace {
        let plan = self.plan();
        let mut sources = plan.pareto_sources().expect("valid plan");
        Trace::generate_per_source(&mut sources, Time::from_ticks(self.horizon_ticks), seed)
    }

    /// Streams the arrival workload for one seed lazily, in O(sources)
    /// memory — identical entries to [`Experiment::trace_for_seed`].
    pub fn arrivals_for_seed(&self, seed: u64) -> MergedStream<ClassSource> {
        let sources = self.plan().pareto_sources().expect("valid plan");
        MergedStream::per_source(sources, seed, Time::from_ticks(self.horizon_ticks))
    }

    /// Runs one scheduler over one pre-generated trace.
    pub fn run_one(&self, scheduler: &mut dyn Scheduler, trace: &Trace) -> SeedResult {
        self.run_one_on(scheduler, trace.entries().iter().copied())
    }

    /// The generic form of [`Experiment::run_one`]: measures any scheduler
    /// over any time-ordered arrival stream, statically dispatched.
    pub fn run_one_on<S, I>(&self, scheduler: &mut S, arrivals: I) -> SeedResult
    where
        S: Scheduler + ?Sized,
        I: IntoIterator<Item = TraceEntry>,
    {
        self.run_one_probed(scheduler, arrivals, &mut NoopProbe)
    }

    /// [`Experiment::run_one_on`] with a telemetry [`Probe`] observing the
    /// replay. With [`NoopProbe`] this monomorphizes to exactly the
    /// unobserved loop; with a counting probe the orchestrator turns the
    /// event stream into per-cell progress without touching the results.
    pub fn run_one_probed<S, I, P>(
        &self,
        scheduler: &mut S,
        arrivals: I,
        probe: &mut P,
    ) -> SeedResult
    where
        S: Scheduler + ?Sized,
        I: IntoIterator<Item = TraceEntry>,
        P: Probe,
    {
        let n = self.sdp.num_classes();
        let mut per_class = vec![Summary::new(); n];
        let mut p95: Vec<P2Quantile> = (0..n).map(|_| P2Quantile::new(0.95)).collect();
        let warmup = Time::from_ticks(self.warmup_ticks);
        run_trace_probed(
            scheduler,
            arrivals,
            1.0,
            |d| {
                if d.start >= warmup {
                    let c = d.packet.class as usize;
                    let w = d.wait().as_f64();
                    per_class[c].push(w);
                    p95[c].push(w);
                }
            },
            probe,
        );
        SeedResult {
            per_class,
            p95: p95.iter().map(|q| q.estimate().unwrap_or(0.0)).collect(),
        }
    }

    /// Runs the experiment for `kind` across all seeds and aggregates.
    ///
    /// Each seed's workload is streamed (never materialized) and the whole
    /// measurement loop is monomorphized per scheduler type via
    /// [`SchedulerKind::build_and_visit`].
    pub fn run(&self, kind: SchedulerKind) -> ExperimentResult {
        let seed_results = self
            .seeds
            .iter()
            .map(|&seed| kind.build_and_visit(&self.sdp, 1.0, MeasureSeed { e: self, seed }))
            .collect();
        ExperimentResult::aggregate(kind, &self.sdp, seed_results)
    }

    /// Runs several schedulers on the *same* workloads (one per seed),
    /// returning results in the order of `kinds`.
    ///
    /// Per-source seeding makes each seed's arrival stream a pure function
    /// of the seed, so the results are identical to calling
    /// [`Experiment::run`] per kind; here each seed's trace is materialized
    /// once and replayed through every scheduler, amortizing the generation
    /// cost across kinds (one seed's trace in memory at a time).
    pub fn run_many(&self, kinds: &[SchedulerKind]) -> Vec<ExperimentResult> {
        self.run_many_probed(kinds, &mut NoopProbe)
    }

    /// [`Experiment::run_many`] with a telemetry [`Probe`] attached to every
    /// (seed, scheduler) replay. The probe sees the concatenated packet
    /// lifecycle of all replays; results are unaffected.
    pub fn run_many_probed<P: Probe>(
        &self,
        kinds: &[SchedulerKind],
        probe: &mut P,
    ) -> Vec<ExperimentResult> {
        let mut per_kind: Vec<Vec<SeedResult>> = kinds
            .iter()
            .map(|_| Vec::with_capacity(self.seeds.len()))
            .collect();
        for &seed in &self.seeds {
            for (results, sr) in per_kind
                .iter_mut()
                .zip(self.run_seed_probed(kinds, seed, probe))
            {
                results.push(sr);
            }
        }
        kinds
            .iter()
            .zip(per_kind)
            .map(|(&kind, seed_results)| ExperimentResult::aggregate(kind, &self.sdp, seed_results))
            .collect()
    }

    /// Measures **one seed** under every scheduler in `kinds` — the shard
    /// unit of the multi-process experiment farm. The seed's trace is
    /// materialized once and replayed through each scheduler, exactly as
    /// one iteration of [`Experiment::run_many_probed`]'s seed loop, so
    /// running every seed through this entry point and folding the results
    /// with [`average_rows`] reproduces the aggregated run bit-for-bit.
    pub fn run_seed_probed<P: Probe>(
        &self,
        kinds: &[SchedulerKind],
        seed: u64,
        probe: &mut P,
    ) -> Vec<SeedResult> {
        let trace = self.trace_for_seed(seed);
        kinds
            .iter()
            .map(|&kind| {
                kind.build_and_visit(
                    &self.sdp,
                    1.0,
                    MeasureTrace {
                        e: self,
                        trace: &trace,
                        probe: &mut *probe,
                    },
                )
            })
            .collect()
    }
}

/// Averages per-seed value rows in **seed order** with the exact float
/// arithmetic of the internal seed aggregation (`acc += x / k`, one fold
/// per seed, in order), so shard-merged results are bit-identical to the
/// single-process run.
///
/// Every row must have the same length; the result has that length
/// (empty input yields an empty vector).
///
/// ```
/// let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
/// let avg = qsim::average_rows(&rows);
/// assert_eq!(avg, vec![1.0 / 2.0 + 3.0 / 2.0, 2.0 / 2.0 + 4.0 / 2.0]);
/// ```
pub fn average_rows(rows: &[Vec<f64>]) -> Vec<f64> {
    let Some(first) = rows.first() else {
        return Vec::new();
    };
    let k = rows.len() as f64;
    let mut acc = vec![0.0; first.len()];
    for row in rows {
        assert_eq!(row.len(), acc.len(), "ragged per-seed rows");
        for (a, v) in acc.iter_mut().zip(row) {
            *a += v / k;
        }
    }
    acc
}

/// Visitor measuring one seed of an experiment with an unboxed scheduler.
struct MeasureSeed<'a> {
    e: &'a Experiment,
    seed: u64,
}

impl SchedulerVisitor for MeasureSeed<'_> {
    type Out = SeedResult;

    fn visit<S: Scheduler>(self, mut scheduler: S) -> SeedResult {
        self.e
            .run_one_on(&mut scheduler, self.e.arrivals_for_seed(self.seed))
    }
}

/// Visitor measuring one materialized trace with an unboxed scheduler.
struct MeasureTrace<'a, P: Probe> {
    e: &'a Experiment,
    trace: &'a Trace,
    probe: &'a mut P,
}

impl<P: Probe> SchedulerVisitor for MeasureTrace<'_, P> {
    type Out = SeedResult;

    fn visit<S: Scheduler>(self, mut scheduler: S) -> SeedResult {
        self.e.run_one_probed(
            &mut scheduler,
            self.trace.entries().iter().copied(),
            self.probe,
        )
    }
}

/// Per-class delay summaries from a single seed.
#[derive(Debug, Clone)]
pub struct SeedResult {
    /// One summary of waiting delays (ticks) per class.
    pub per_class: Vec<Summary>,
    /// Streaming 95th-percentile estimate of each class's delay (ticks).
    pub p95: Vec<f64>,
}

impl SeedResult {
    /// Mean delay of each class in ticks.
    pub fn mean_delays(&self) -> Vec<f64> {
        self.per_class.iter().map(Summary::mean).collect()
    }

    /// Ratios `d̄_i / d̄_{i+1}` between successive classes.
    pub fn successive_ratios(&self) -> Vec<f64> {
        let d = self.mean_delays();
        d.windows(2).map(|w| w[0] / w[1]).collect()
    }
}

/// Seed-aggregated result of one (scheduler, ρ, load-split) point.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The scheduler measured.
    pub kind: SchedulerKind,
    /// Per-class mean delays in ticks, averaged over seeds.
    pub mean_delays: Vec<f64>,
    /// Successive-class delay ratios, averaged over seeds (each seed's
    /// ratio computed first, then averaged — matching the paper's
    /// per-run-then-average methodology).
    pub ratios: Vec<f64>,
    /// The per-pair target ratios s_{i+1}/s_i.
    pub target_ratios: Vec<f64>,
    /// Per-class delay standard deviation (ticks), averaged over seeds —
    /// the jitter a delay-sensitive application would feel.
    pub std_devs: Vec<f64>,
    /// Per-class 95th-percentile delay (ticks), averaged over seeds.
    pub p95s: Vec<f64>,
}

impl ExperimentResult {
    fn aggregate(kind: SchedulerKind, sdp: &Sdp, seeds: Vec<SeedResult>) -> Self {
        let n = sdp.num_classes();
        let mut mean_delays = vec![0.0; n];
        let mut ratios = vec![0.0; n - 1];
        let mut std_devs = vec![0.0; n];
        let mut p95s = vec![0.0; n];
        let k = seeds.len() as f64;
        for sr in &seeds {
            for (acc, d) in mean_delays.iter_mut().zip(sr.mean_delays()) {
                *acc += d / k;
            }
            for (acc, r) in ratios.iter_mut().zip(sr.successive_ratios()) {
                *acc += r / k;
            }
            for (acc, s) in std_devs.iter_mut().zip(&sr.per_class) {
                *acc += s.std_dev() / k;
            }
            for (acc, p) in p95s.iter_mut().zip(&sr.p95) {
                *acc += p / k;
            }
        }
        let target_ratios = (0..n - 1).map(|i| sdp.target_ratio(i)).collect();
        ExperimentResult {
            kind,
            mean_delays,
            ratios,
            target_ratios,
            std_devs,
            p95s,
        }
    }

    /// Mean delays converted to p-units (mean packet transmission times).
    pub fn mean_delays_punits(&self) -> Vec<f64> {
        self.mean_delays
            .iter()
            .map(|d| d / traffic::PAPER_MEAN_PACKET_BYTES)
            .collect()
    }

    /// Mean absolute relative deviation of the measured ratios from their
    /// targets — the scalar used to compare schedulers.
    pub fn ratio_deviation(&self) -> f64 {
        self.ratios
            .iter()
            .zip(&self.target_ratios)
            .map(|(r, t)| (r - t).abs() / t)
            .sum::<f64>()
            / self.ratios.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(utilization: f64) -> Experiment {
        Experiment::paper(
            utilization,
            Sdp::paper_default(),
            20_000, // p-units — small but enough for a coarse signal
            vec![1, 2],
        )
    }

    #[test]
    fn wtp_converges_toward_target_at_high_load() {
        let e = small(0.95);
        let r = e.run(SchedulerKind::Wtp);
        for (ratio, target) in r.ratios.iter().zip(&r.target_ratios) {
            assert!(
                (ratio - target).abs() / target < 0.35,
                "ratio {ratio} vs target {target}"
            );
        }
    }

    #[test]
    fn wtp_undershoots_at_moderate_load() {
        // The paper: at ρ=0.70 the ratio is ~1.5 when it should be 2.
        let e = small(0.70);
        let r = e.run(SchedulerKind::Wtp);
        let avg_ratio = r.ratios.iter().sum::<f64>() / r.ratios.len() as f64;
        assert!(
            avg_ratio < 1.85 && avg_ratio > 1.1,
            "expected undershoot, got {avg_ratio}"
        );
    }

    #[test]
    fn fcfs_ratio_is_one() {
        let e = small(0.9);
        let r = e.run(SchedulerKind::Fcfs);
        for ratio in &r.ratios {
            assert!((ratio - 1.0).abs() < 0.25, "FCFS ratio {ratio}");
        }
    }

    #[test]
    fn run_many_shares_traces_across_schedulers() {
        let e = small(0.9);
        let results = e.run_many(&[SchedulerKind::Fcfs, SchedulerKind::Fcfs]);
        assert_eq!(results[0].mean_delays, results[1].mean_delays);
    }

    #[test]
    fn jitter_metrics_are_populated_and_ordered() {
        let e = small(0.95);
        let r = e.run(SchedulerKind::Wtp);
        for c in 0..4 {
            assert!(r.std_devs[c] > 0.0, "class {c} std dev missing");
            assert!(
                r.p95s[c] > r.mean_delays[c],
                "class {c}: p95 {} should exceed mean {}",
                r.p95s[c],
                r.mean_delays[c]
            );
        }
        // Higher classes have lower tail delays too.
        for w in r.p95s.windows(2) {
            assert!(w[0] > w[1], "p95 not class-ordered: {:?}", r.p95s);
        }
    }

    #[test]
    fn higher_class_has_lower_delay_under_wtp() {
        let e = small(0.9);
        let r = e.run(SchedulerKind::Wtp);
        for w in r.mean_delays.windows(2) {
            assert!(w[0] > w[1], "delays not ordered: {:?}", r.mean_delays);
        }
    }

    #[test]
    fn sharded_seed_runs_reproduce_aggregate_bitwise() {
        // The farm's merge law: run each seed separately (the shard unit),
        // fold per-seed ratio/delay rows with `average_rows` in seed
        // order, and the result must be bit-identical to the one-process
        // `run_many_probed` aggregation.
        let e = small(0.9);
        let kinds = [SchedulerKind::Wtp, SchedulerKind::Bpr];
        let whole = e.run_many(&kinds);

        let per_seed: Vec<Vec<SeedResult>> = e
            .seeds
            .iter()
            .map(|&seed| e.run_seed_probed(&kinds, seed, &mut telemetry::NoopProbe))
            .collect();
        for (ki, r) in whole.iter().enumerate() {
            let ratios: Vec<Vec<f64>> = per_seed
                .iter()
                .map(|seeds| seeds[ki].successive_ratios())
                .collect();
            assert_eq!(average_rows(&ratios), r.ratios, "kind {ki} ratios drift");
            let delays: Vec<Vec<f64>> = per_seed
                .iter()
                .map(|seeds| seeds[ki].mean_delays())
                .collect();
            assert_eq!(
                average_rows(&delays),
                r.mean_delays,
                "kind {ki} delays drift"
            );
        }
    }

    #[test]
    fn average_rows_handles_edges() {
        assert!(average_rows(&[]).is_empty());
        assert_eq!(average_rows(&[vec![5.0, 7.0]]), vec![5.0, 7.0]);
    }

    #[test]
    fn deviation_metric_is_zero_for_exact_ratios() {
        let r = ExperimentResult {
            kind: SchedulerKind::Wtp,
            mean_delays: vec![8.0, 4.0, 2.0, 1.0],
            ratios: vec![2.0, 2.0, 2.0],
            target_ratios: vec![2.0, 2.0, 2.0],
            std_devs: vec![0.0; 4],
            p95s: vec![0.0; 4],
        };
        assert_eq!(r.ratio_deviation(), 0.0);
    }
}
