//! # scenario — dynamic-scenario timelines for live reconfiguration
//!
//! The paper evaluates schedulers in *stationary* regimes; operationally the
//! interesting moments are the non-stationary ones — an operator changes the
//! delay differentiation parameters, a link flaps, a class of traffic joins
//! or surges. This crate models those moments as a validated, virtual-time
//! **timeline** ([`Scenario`]) plus one shared dispatch point
//! ([`ScenarioRuntime`]) that every replay loop and network engine drives
//! the same way:
//!
//! 1. before admitting work at time `t`, call
//!    [`ScenarioRuntime::apply_due`]`(t, …)`;
//! 2. the runtime updates its own state (link up/down, class membership,
//!    load scales), emits one [`Probe::on_scenario_event`] record per
//!    applied event, and forwards engine-facing work ([`Command`]s: SDP
//!    swaps via [`sched::Scheduler::reconfigure`], link-rate changes, link
//!    faults) to the caller's closure;
//! 3. the loop consults the runtime's queries ([`admits`], [`link_up`],
//!    [`gap_scale`], …) when admitting and serving packets.
//!
//! [`admits`]: ScenarioRuntime::admits
//! [`link_up`]: ScenarioRuntime::link_up
//! [`gap_scale`]: ScenarioRuntime::gap_scale
//!
//! Because state transitions, telemetry, and command fan-out all live here,
//! `qsim`'s trace/lossy/streaming loops and `netsim`'s engine/mesh agree on
//! scenario semantics by construction.
//!
//! An **empty** scenario is the common case and is free: loops dispatch on
//! [`Scenario::is_empty`] up front and run the unmodified stationary path.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

use sched::Sdp;
use simcore::Time;
use telemetry::Probe;

/// What a downed link does with packets that arrive while it is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DownPolicy {
    /// Queue arrivals; they are served when the link comes back up.
    #[default]
    Hold,
    /// Discard arrivals (probes see `on_arrival` + `on_drop`).
    Drop,
}

/// One perturbation in a [`Scenario`] timeline.
///
/// Link indices are engine-defined: 0 is the only valid link on a
/// single-link (`qsim`) run; `netsim` numbers its links in configuration
/// order. Class indices use the usual 0-based, higher-is-better convention.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// Swap the delay differentiation parameters on every scheduler, live
    /// (via [`sched::Scheduler::reconfigure`]). Schedulers that refuse with
    /// [`sched::ReconfigureError::Unsupported`] keep running unchanged.
    SetSdp(Sdp),
    /// Change a link's capacity to `rate` bytes/tick.
    SetLinkRate {
        /// Which link.
        link: u16,
        /// New capacity in bytes/tick; must be positive and finite.
        rate: f64,
    },
    /// Take a link down. Must be matched by a later [`ScenarioEvent::LinkUp`].
    LinkDown {
        /// Which link.
        link: u16,
        /// What to do with arrivals while down.
        policy: DownPolicy,
    },
    /// Bring a downed link back up.
    LinkUp {
        /// Which link.
        link: u16,
    },
    /// Re-admit a class that previously [left](ScenarioEvent::ClassLeave).
    ClassJoin {
        /// Which class.
        class: u8,
    },
    /// Stop admitting new arrivals of `class` (already-queued packets are
    /// still served). All classes start joined.
    ClassLeave {
        /// Which class.
        class: u8,
    },
    /// Scale the mean inter-arrival gap of `class`'s sources by
    /// `gap_scale` from this instant on (piecewise constant; `< 1` is a
    /// surge, `> 1` a lull, `1` an identity marker). Only meaningful for
    /// generated workloads — prerecorded traces cannot be re-timed.
    LoadSurge {
        /// Which class.
        class: u8,
        /// Multiplier on the mean inter-arrival gap; positive and finite.
        gap_scale: f64,
    },
}

impl ScenarioEvent {
    /// The event's stable telemetry name (the `kind` field of the JSONL
    /// `scenario` record).
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioEvent::SetSdp(_) => "set_sdp",
            ScenarioEvent::SetLinkRate { .. } => "set_link_rate",
            ScenarioEvent::LinkDown { .. } => "link_down",
            ScenarioEvent::LinkUp { .. } => "link_up",
            ScenarioEvent::ClassJoin { .. } => "class_join",
            ScenarioEvent::ClassLeave { .. } => "class_leave",
            ScenarioEvent::LoadSurge { .. } => "load_surge",
        }
    }

    /// The `(link, value)` pair the telemetry record carries. Class-scoped
    /// events report the class index in the `link` slot; events without a
    /// scalar payload report 0.
    fn telemetry_fields(&self) -> (u16, f64) {
        match *self {
            ScenarioEvent::SetSdp(_) => (0, 0.0),
            ScenarioEvent::SetLinkRate { link, rate } => (link, rate),
            ScenarioEvent::LinkDown { link, policy } => {
                (link, if policy == DownPolicy::Drop { 1.0 } else { 0.0 })
            }
            ScenarioEvent::LinkUp { link } => (link, 0.0),
            ScenarioEvent::ClassJoin { class } => (class as u16, 0.0),
            ScenarioEvent::ClassLeave { class } => (class as u16, 0.0),
            ScenarioEvent::LoadSurge { class, gap_scale } => (class as u16, gap_scale),
        }
    }
}

/// An event bound to its virtual-time activation instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// When the event takes effect (applied at the first dispatch-point
    /// visit with `now ≥ at`; engines visit before every admission and
    /// decision, so activation is exact at packet granularity).
    pub at: Time,
    /// What happens.
    pub event: ScenarioEvent,
}

/// Why a [`ScenarioBuilder::build`] was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A `SetLinkRate` carried a non-positive or non-finite rate.
    BadRate {
        /// The offending event's activation time (ticks).
        at: u64,
        /// The offending rate.
        rate: f64,
    },
    /// A `LoadSurge` carried a non-positive or non-finite gap scale.
    BadGapScale {
        /// The offending event's activation time (ticks).
        at: u64,
        /// The offending scale.
        gap_scale: f64,
    },
    /// A link was taken down and never brought back up — the replay loops
    /// would deadlock waiting for capacity that never returns.
    LinkNeverRestored {
        /// The link left down.
        link: u16,
    },
    /// `LinkDown` on a link that is already down.
    LinkAlreadyDown {
        /// The event's activation time (ticks).
        at: u64,
        /// The link.
        link: u16,
    },
    /// `LinkUp` on a link that is not down.
    LinkNotDown {
        /// The event's activation time (ticks).
        at: u64,
        /// The link.
        link: u16,
    },
    /// `ClassJoin` for a class that never left (all classes start joined).
    ClassAlreadyJoined {
        /// The event's activation time (ticks).
        at: u64,
        /// The class.
        class: u8,
    },
    /// `ClassLeave` for a class that already left.
    ClassAlreadyLeft {
        /// The event's activation time (ticks).
        at: u64,
        /// The class.
        class: u8,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadRate { at, rate } => {
                write!(
                    f,
                    "set_link_rate at t={at}: rate {rate} must be positive and finite"
                )
            }
            ScenarioError::BadGapScale { at, gap_scale } => {
                write!(
                    f,
                    "load_surge at t={at}: gap scale {gap_scale} must be positive and finite"
                )
            }
            ScenarioError::LinkNeverRestored { link } => {
                write!(f, "link {link} is taken down but never brought back up")
            }
            ScenarioError::LinkAlreadyDown { at, link } => {
                write!(f, "link_down at t={at}: link {link} is already down")
            }
            ScenarioError::LinkNotDown { at, link } => {
                write!(f, "link_up at t={at}: link {link} is not down")
            }
            ScenarioError::ClassAlreadyJoined { at, class } => {
                write!(f, "class_join at t={at}: class {class} is already joined")
            }
            ScenarioError::ClassAlreadyLeft { at, class } => {
                write!(f, "class_leave at t={at}: class {class} already left")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A validated, time-sorted perturbation timeline.
///
/// Build one with [`Scenario::builder`]; [`Scenario::empty`] is the free
/// stationary case. The timeline is immutable after construction, so one
/// scenario can parameterize many runs (seeds, schedulers) without
/// revalidation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scenario {
    events: Vec<TimedEvent>,
}

impl Scenario {
    /// The stationary (no perturbation) scenario.
    pub fn empty() -> Self {
        Scenario::default()
    }

    /// Starts building a timeline.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder { events: Vec::new() }
    }

    /// True when there is nothing to apply — replay loops dispatch to their
    /// unmodified stationary path in this case.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by activation time (stable: events sharing an
    /// instant apply in insertion order).
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of timeline events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the timeline re-times generated sources — such scenarios
    /// are rejected for prerecorded-trace workloads, whose arrival instants
    /// are data, not a rate process.
    pub fn has_load_surge(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.event, ScenarioEvent::LoadSurge { .. }))
    }

    /// The piecewise-constant gap-scale profile of `class`: `(from, scale)`
    /// breakpoints in time order (implicitly `scale = 1` before the first).
    /// Source wrappers consume this ahead of the replay clock, since
    /// generated streams draw arrivals before the loop reaches them.
    pub fn gap_scale_breakpoints(&self, class: u8) -> Vec<(Time, f64)> {
        self.events
            .iter()
            .filter_map(|e| match e.event {
                ScenarioEvent::LoadSurge {
                    class: c,
                    gap_scale,
                } if c == class => Some((e.at, gap_scale)),
                _ => None,
            })
            .collect()
    }
}

/// Accumulates [`TimedEvent`]s and validates them into a [`Scenario`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    events: Vec<TimedEvent>,
}

impl ScenarioBuilder {
    /// Adds an event at `at` (any insertion order; `build` sorts stably).
    pub fn at(mut self, at: Time, event: ScenarioEvent) -> Self {
        self.events.push(TimedEvent { at, event });
        self
    }

    /// Adds a live SDP swap.
    pub fn set_sdp(self, at: Time, sdp: Sdp) -> Self {
        self.at(at, ScenarioEvent::SetSdp(sdp))
    }

    /// Adds a link-capacity change.
    pub fn set_link_rate(self, at: Time, link: u16, rate: f64) -> Self {
        self.at(at, ScenarioEvent::SetLinkRate { link, rate })
    }

    /// Adds a link fault.
    pub fn link_down(self, at: Time, link: u16, policy: DownPolicy) -> Self {
        self.at(at, ScenarioEvent::LinkDown { link, policy })
    }

    /// Adds a link restoration.
    pub fn link_up(self, at: Time, link: u16) -> Self {
        self.at(at, ScenarioEvent::LinkUp { link })
    }

    /// Adds a class join (after an earlier leave).
    pub fn class_join(self, at: Time, class: u8) -> Self {
        self.at(at, ScenarioEvent::ClassJoin { class })
    }

    /// Adds a class departure.
    pub fn class_leave(self, at: Time, class: u8) -> Self {
        self.at(at, ScenarioEvent::ClassLeave { class })
    }

    /// Adds a load surge/lull for one class's sources.
    pub fn load_surge(self, at: Time, class: u8, gap_scale: f64) -> Self {
        self.at(at, ScenarioEvent::LoadSurge { class, gap_scale })
    }

    /// Sorts, validates, and freezes the timeline.
    pub fn build(mut self) -> Result<Scenario, ScenarioError> {
        self.events.sort_by_key(|e| e.at);
        // Walk the sorted timeline once, checking payloads and simulating
        // the link/class state machines.
        let mut down: Vec<u16> = Vec::new();
        let mut left: Vec<u8> = Vec::new();
        for TimedEvent { at, event } in &self.events {
            let at = at.ticks();
            match *event {
                ScenarioEvent::SetSdp(_) => {}
                ScenarioEvent::SetLinkRate { rate, .. } => {
                    if !(rate > 0.0 && rate.is_finite()) {
                        return Err(ScenarioError::BadRate { at, rate });
                    }
                }
                ScenarioEvent::LinkDown { link, .. } => {
                    if down.contains(&link) {
                        return Err(ScenarioError::LinkAlreadyDown { at, link });
                    }
                    down.push(link);
                }
                ScenarioEvent::LinkUp { link } => {
                    let Some(i) = down.iter().position(|&l| l == link) else {
                        return Err(ScenarioError::LinkNotDown { at, link });
                    };
                    down.swap_remove(i);
                }
                ScenarioEvent::ClassJoin { class } => {
                    let Some(i) = left.iter().position(|&c| c == class) else {
                        return Err(ScenarioError::ClassAlreadyJoined { at, class });
                    };
                    left.swap_remove(i);
                }
                ScenarioEvent::ClassLeave { class } => {
                    if left.contains(&class) {
                        return Err(ScenarioError::ClassAlreadyLeft { at, class });
                    }
                    left.push(class);
                }
                ScenarioEvent::LoadSurge { gap_scale, .. } => {
                    if !(gap_scale > 0.0 && gap_scale.is_finite()) {
                        return Err(ScenarioError::BadGapScale { at, gap_scale });
                    }
                }
            }
        }
        if let Some(&link) = down.first() {
            return Err(ScenarioError::LinkNeverRestored { link });
        }
        Ok(Scenario {
            events: self.events,
        })
    }
}

/// Engine-facing work forwarded by [`ScenarioRuntime::apply_due`].
///
/// State-only events (class membership, load surges) are absorbed by the
/// runtime and never appear here; the engine reads them back through the
/// runtime's queries.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Apply new SDPs to every scheduler via
    /// [`sched::Scheduler::reconfigure`]. [`Unsupported`] schedulers keep
    /// running; a class-count mismatch is a configuration bug the engine
    /// should surface loudly.
    ///
    /// [`Unsupported`]: sched::ReconfigureError::Unsupported
    Reconfigure(Sdp),
    /// Retime the link: future transmissions (and rate-based schedulers,
    /// via [`sched::Scheduler::set_link_rate`]) use the new capacity. The
    /// packet in flight, if any, completes at the old rate.
    SetLinkRate {
        /// Which link.
        link: u16,
        /// New capacity, bytes/tick (validated positive and finite).
        rate: f64,
    },
    /// Stop serving the link. Non-preemptive: an in-flight packet
    /// completes; no new transmission starts until the matching
    /// [`Command::LinkUp`].
    LinkDown {
        /// Which link.
        link: u16,
        /// Fate of arrivals while down (also queryable via
        /// [`ScenarioRuntime::down_policy`]).
        policy: DownPolicy,
    },
    /// Resume serving the link (the engine should immediately try to start
    /// a transmission if the link is idle and backlogged).
    LinkUp {
        /// Which link.
        link: u16,
    },
}

/// The shared dispatch point: owns the timeline cursor and the scenario
/// state machine during one run.
///
/// Replay loops call [`apply_due`](ScenarioRuntime::apply_due) at every
/// admission and decision instant; events activate exactly once, in time
/// order, with their telemetry records emitted here — no engine duplicates
/// that logic.
#[derive(Debug, Clone)]
pub struct ScenarioRuntime {
    events: Vec<TimedEvent>,
    next: usize,
    link_up: Vec<bool>,
    policy: Vec<DownPolicy>,
    class_active: Vec<bool>,
    gap_scale: Vec<f64>,
}

impl ScenarioRuntime {
    /// Binds `scenario` to an engine with `num_links` links and
    /// `num_classes` classes.
    ///
    /// # Panics
    /// Panics if any event references a link or class outside those ranges
    /// — the timeline does not fit the topology it was asked to drive.
    pub fn new(scenario: &Scenario, num_links: usize, num_classes: usize) -> Self {
        for TimedEvent { at, event } in scenario.events() {
            let (link_ok, class_ok) = match *event {
                ScenarioEvent::SetSdp(_) => (true, true),
                ScenarioEvent::SetLinkRate { link, .. }
                | ScenarioEvent::LinkDown { link, .. }
                | ScenarioEvent::LinkUp { link } => ((link as usize) < num_links, true),
                ScenarioEvent::ClassJoin { class }
                | ScenarioEvent::ClassLeave { class }
                | ScenarioEvent::LoadSurge { class, .. } => (true, (class as usize) < num_classes),
            };
            assert!(
                link_ok,
                "scenario event {} at t={} references a link outside 0..{num_links}",
                event.kind(),
                at.ticks()
            );
            assert!(
                class_ok,
                "scenario event {} at t={} references a class outside 0..{num_classes}",
                event.kind(),
                at.ticks()
            );
        }
        ScenarioRuntime {
            events: scenario.events().to_vec(),
            next: 0,
            link_up: vec![true; num_links],
            policy: vec![DownPolicy::Hold; num_links],
            class_active: vec![true; num_classes],
            gap_scale: vec![1.0; num_classes],
        }
    }

    /// The activation time of the next pending event, if any. Loops stalled
    /// by a downed link jump their clock here (validation guarantees a
    /// restoring event exists).
    pub fn next_at(&self) -> Option<Time> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// Applies every event with `at ≤ now`, in order: updates the runtime
    /// state, emits one [`Probe::on_scenario_event`] per event (timestamped
    /// at the event's scheduled instant), and forwards engine-facing work
    /// to `apply`.
    pub fn apply_due<P: Probe>(
        &mut self,
        now: Time,
        probe: &mut P,
        mut apply: impl FnMut(Command),
    ) {
        while self.next < self.events.len() && self.events[self.next].at <= now {
            let TimedEvent { at, event } = self.events[self.next].clone();
            self.next += 1;
            if P::ENABLED {
                let (link, value) = event.telemetry_fields();
                probe.on_scenario_event(at, link, event.kind(), value);
            }
            match event {
                ScenarioEvent::SetSdp(sdp) => apply(Command::Reconfigure(sdp)),
                ScenarioEvent::SetLinkRate { link, rate } => {
                    apply(Command::SetLinkRate { link, rate });
                }
                ScenarioEvent::LinkDown { link, policy } => {
                    self.link_up[link as usize] = false;
                    self.policy[link as usize] = policy;
                    apply(Command::LinkDown { link, policy });
                }
                ScenarioEvent::LinkUp { link } => {
                    self.link_up[link as usize] = true;
                    apply(Command::LinkUp { link });
                }
                ScenarioEvent::ClassJoin { class } => {
                    self.class_active[class as usize] = true;
                }
                ScenarioEvent::ClassLeave { class } => {
                    self.class_active[class as usize] = false;
                }
                ScenarioEvent::LoadSurge { class, gap_scale } => {
                    self.gap_scale[class as usize] = gap_scale;
                }
            }
        }
    }

    /// True when new arrivals of `class` are admitted (classes that
    /// [left](ScenarioEvent::ClassLeave) are filtered at the source: their
    /// packets simply never enter the system).
    pub fn admits(&self, class: u8) -> bool {
        self.class_active[class as usize]
    }

    /// The current gap multiplier of `class`'s sources (1 until the first
    /// [`ScenarioEvent::LoadSurge`]).
    pub fn gap_scale(&self, class: u8) -> f64 {
        self.gap_scale[class as usize]
    }

    /// Whether `link` is currently up.
    pub fn link_up(&self, link: u16) -> bool {
        self.link_up[link as usize]
    }

    /// The arrival policy of `link`'s most recent fault (meaningful while
    /// the link is down).
    pub fn down_policy(&self, link: u16) -> DownPolicy {
        self.policy[link as usize]
    }

    /// True when every timeline event has been applied.
    pub fn is_done(&self) -> bool {
        self.next == self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::NoopProbe;

    fn t(ticks: u64) -> Time {
        Time::from_ticks(ticks)
    }

    #[test]
    fn empty_scenario_is_empty_and_free() {
        let sc = Scenario::empty();
        assert!(sc.is_empty());
        assert_eq!(sc.len(), 0);
        let mut rt = ScenarioRuntime::new(&sc, 1, 4);
        assert_eq!(rt.next_at(), None);
        assert!(rt.is_done());
        rt.apply_due(t(1_000_000), &mut NoopProbe, |_| panic!("no commands"));
        assert!(rt.admits(3) && rt.link_up(0));
        assert_eq!(rt.gap_scale(0), 1.0);
    }

    #[test]
    fn builder_sorts_and_preserves_same_instant_insertion_order() {
        let sc = Scenario::builder()
            .set_link_rate(t(200), 0, 2.0)
            .set_sdp(t(100), Sdp::paper_default())
            .load_surge(t(100), 1, 0.5)
            .build()
            .unwrap();
        let kinds: Vec<&str> = sc.events().iter().map(|e| e.event.kind()).collect();
        assert_eq!(kinds, vec!["set_sdp", "load_surge", "set_link_rate"]);
    }

    #[test]
    fn validation_rejects_bad_payloads_and_dangling_faults() {
        let bad_rate = Scenario::builder().set_link_rate(t(1), 0, 0.0).build();
        assert_eq!(
            bad_rate.unwrap_err(),
            ScenarioError::BadRate { at: 1, rate: 0.0 }
        );

        let bad_scale = Scenario::builder().load_surge(t(2), 0, -1.0).build();
        assert_eq!(
            bad_scale.unwrap_err(),
            ScenarioError::BadGapScale {
                at: 2,
                gap_scale: -1.0
            }
        );

        let dangling = Scenario::builder()
            .link_down(t(3), 1, DownPolicy::Hold)
            .build();
        assert_eq!(
            dangling.unwrap_err(),
            ScenarioError::LinkNeverRestored { link: 1 }
        );

        let double_down = Scenario::builder()
            .link_down(t(1), 0, DownPolicy::Hold)
            .link_down(t(2), 0, DownPolicy::Drop)
            .link_up(t(3), 0)
            .build();
        assert_eq!(
            double_down.unwrap_err(),
            ScenarioError::LinkAlreadyDown { at: 2, link: 0 }
        );

        let up_while_up = Scenario::builder().link_up(t(1), 0).build();
        assert_eq!(
            up_while_up.unwrap_err(),
            ScenarioError::LinkNotDown { at: 1, link: 0 }
        );

        let join_joined = Scenario::builder().class_join(t(1), 2).build();
        assert_eq!(
            join_joined.unwrap_err(),
            ScenarioError::ClassAlreadyJoined { at: 1, class: 2 }
        );

        let leave_left = Scenario::builder()
            .class_leave(t(1), 2)
            .class_leave(t(2), 2)
            .build();
        assert_eq!(
            leave_left.unwrap_err(),
            ScenarioError::ClassAlreadyLeft { at: 2, class: 2 }
        );
    }

    #[test]
    fn runtime_applies_events_once_in_order_with_commands() {
        let sc = Scenario::builder()
            .set_sdp(t(10), Sdp::paper_default())
            .link_down(t(20), 0, DownPolicy::Drop)
            .link_up(t(30), 0)
            .class_leave(t(30), 3)
            .load_surge(t(40), 0, 0.5)
            .build()
            .unwrap();
        let mut rt = ScenarioRuntime::new(&sc, 1, 4);
        assert_eq!(rt.next_at(), Some(t(10)));

        let mut cmds = Vec::new();
        rt.apply_due(t(25), &mut NoopProbe, |c| cmds.push(c));
        assert_eq!(cmds.len(), 2);
        assert!(matches!(cmds[0], Command::Reconfigure(_)));
        assert_eq!(
            cmds[1],
            Command::LinkDown {
                link: 0,
                policy: DownPolicy::Drop
            }
        );
        assert!(!rt.link_up(0));
        assert_eq!(rt.down_policy(0), DownPolicy::Drop);
        assert_eq!(rt.next_at(), Some(t(30)));

        cmds.clear();
        rt.apply_due(t(40), &mut NoopProbe, |c| cmds.push(c));
        // link_up forwarded; class_leave and load_surge are state-only.
        assert_eq!(cmds, vec![Command::LinkUp { link: 0 }]);
        assert!(rt.link_up(0));
        assert!(!rt.admits(3) && rt.admits(2));
        assert_eq!(rt.gap_scale(0), 0.5);
        assert!(rt.is_done());

        // Re-visiting never re-applies.
        rt.apply_due(t(100), &mut NoopProbe, |_| panic!("already applied"));
    }

    #[test]
    fn runtime_emits_one_telemetry_record_per_event() {
        struct Rec(Vec<(u64, u16, &'static str, f64)>);
        impl Probe for Rec {
            fn on_scenario_event(&mut self, at: Time, link: u16, kind: &'static str, value: f64) {
                self.0.push((at.ticks(), link, kind, value));
            }
        }
        let sc = Scenario::builder()
            .set_link_rate(t(5), 0, 2.5)
            .class_leave(t(7), 2)
            .link_down(t(9), 0, DownPolicy::Drop)
            .link_up(t(11), 0)
            .build()
            .unwrap();
        let mut rt = ScenarioRuntime::new(&sc, 1, 4);
        let mut rec = Rec(Vec::new());
        rt.apply_due(t(100), &mut rec, |_| {});
        assert_eq!(
            rec.0,
            vec![
                (5, 0, "set_link_rate", 2.5),
                (7, 2, "class_leave", 0.0),
                (9, 0, "link_down", 1.0),
                (11, 0, "link_up", 0.0),
            ]
        );
    }

    #[test]
    fn gap_scale_breakpoints_filter_by_class() {
        let sc = Scenario::builder()
            .load_surge(t(10), 0, 0.5)
            .load_surge(t(20), 1, 2.0)
            .load_surge(t(30), 0, 1.0)
            .build()
            .unwrap();
        assert!(sc.has_load_surge());
        assert_eq!(
            sc.gap_scale_breakpoints(0),
            vec![(t(10), 0.5), (t(30), 1.0)]
        );
        assert_eq!(sc.gap_scale_breakpoints(1), vec![(t(20), 2.0)]);
        assert!(sc.gap_scale_breakpoints(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "references a link outside")]
    fn runtime_rejects_out_of_range_link() {
        let sc = Scenario::builder()
            .link_down(t(1), 7, DownPolicy::Hold)
            .link_up(t(2), 7)
            .build()
            .unwrap();
        let _ = ScenarioRuntime::new(&sc, 2, 4);
    }

    #[test]
    #[should_panic(expected = "references a class outside")]
    fn runtime_rejects_out_of_range_class() {
        let sc = Scenario::builder().class_leave(t(1), 9).build().unwrap();
        let _ = ScenarioRuntime::new(&sc, 1, 4);
    }
}
