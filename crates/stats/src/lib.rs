//! # stats — measurement machinery for the PDD reproduction
//!
//! Everything §5/§6 of the paper measures, implemented as reusable pieces:
//!
//! * [`Summary`] — streaming mean/variance/min/max (Welford).
//! * [`percentile`] / [`Percentiles`] — exact quantiles with linear
//!   interpolation, plus [`P2Quantile`], a constant-space streaming
//!   estimator for long runs.
//! * [`IntervalSeries`] — per-class average delays over consecutive
//!   monitoring intervals of length τ (the "short timescales" metric of
//!   Eq. 2 / Fig. 3).
//! * [`rd_for_interval`] / [`RdCollector`] — the paper's R_D figure of
//!   merit: the average ratio of average delays between successive classes,
//!   with geometric normalization across inactive classes.
//! * [`fcfs_mean_wait`] / [`check_feasibility`] — the Eq. (7) feasibility
//!   conditions, evaluated by replaying class subsets through an FCFS
//!   server exactly as the paper prescribes.
//! * [`reconvergence_times`] — how fast the achieved delay ratios return
//!   to their targets after a dynamic-scenario perturbation (an SDP swap,
//!   a link flap).
//! * [`Histogram`] — log-binned delay histograms for reports.
//! * [`Table`] — aligned ASCII tables for the experiment harness output.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod burstiness;
mod feasibility;
mod histogram;
mod percentile;
mod plot;
mod ratio;
mod reconverge;
mod series;
mod summary;
mod table;

pub use burstiness::{hurst_estimate, idc_curve, variance_time};
pub use feasibility::{check_feasibility, fcfs_mean_wait, FeasibilityReport, SubsetCheck};
pub use histogram::Histogram;
pub use percentile::{percentile, P2Quantile, Percentiles};
pub use plot::AsciiPlot;
pub use ratio::{rd_for_interval, successive_ratios, RdCollector};
pub use reconverge::{reconvergence_times, ReconvergenceConfig};
pub use series::IntervalSeries;
pub use summary::Summary;
pub use table::Table;
