//! Aligned ASCII tables for harness output.

use std::fmt;

/// A simple right-padded ASCII table, used by the experiment binaries to
/// print the paper's rows.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    /// Panics if the row has more cells than there are headers.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            row.len() <= self.headers.len(),
            "row has {} cells but table has {} columns",
            row.len(),
            self.headers.len()
        );
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}", w = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["util", "WTP", "BPR"]);
        t.row(["70%", "1.52", "1.4"]);
        t.row(["99.9%", "2.00", "1.97"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("util "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("1.52"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x"]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.to_string().contains('x'));
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn long_rows_rejected() {
        let mut t = Table::new(["a"]);
        t.row(["x", "y"]);
    }
}
