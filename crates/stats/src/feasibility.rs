//! Eq. (7) feasibility conditions, evaluated on recorded traces.
//!
//! A set of target average delays `{d̄_i}` is feasible iff for every
//! nonempty subset φ of classes (including the full set, whose constraint
//! is the conservation-law lower bound)
//!
//! `Σ_{i∈φ} λ_i·d̄_i  ≥  (Σ_{i∈φ} λ_i) · d̄_FCFS(φ)`
//!
//! where `d̄_FCFS(φ)` is the average queueing delay the traffic of φ alone
//! would see in a work-conserving FCFS server (Coffman–Mitrani). Like the
//! paper (§3, §5), we evaluate the right-hand side by *simulating the FCFS
//! server* on the recorded arrivals of each subset. (The paper quotes the
//! 2^N − 2 proper-subset inequalities because its Eq.-6 targets satisfy
//! the full-set constraint with equality by construction; an arbitrary
//! target vector must be checked against it too.)

use std::fmt;

/// A recorded packet arrival: `(time_ticks, class, size_bytes)`.
pub type Arrival = (u64, u8, u32);

/// Mean FCFS queueing (waiting) delay, in ticks, of the given classes'
/// arrivals replayed through a work-conserving server of `rate` bytes/tick.
///
/// Pass `None` for `classes` to replay the full aggregate. Returns 0 when
/// the filtered trace is empty.
///
/// # Panics
/// Panics if `rate` is not positive/finite or the trace is unsorted.
pub fn fcfs_mean_wait(arrivals: &[Arrival], classes: Option<&[u8]>, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    assert!(
        arrivals.windows(2).all(|w| w[0].0 <= w[1].0),
        "arrivals must be time-sorted"
    );
    let mut free = 0.0f64;
    let mut total_wait = 0.0f64;
    let mut n = 0u64;
    for &(t, class, size) in arrivals {
        if let Some(cs) = classes {
            if !cs.contains(&class) {
                continue;
            }
        }
        let t = t as f64;
        let start = free.max(t);
        total_wait += start - t;
        free = start + size as f64 / rate;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total_wait / n as f64
    }
}

/// One subset's feasibility check.
#[derive(Debug, Clone)]
pub struct SubsetCheck {
    /// The classes in the subset φ.
    pub classes: Vec<u8>,
    /// Left-hand side: Σ_{i∈φ} λ_i·d̄_i (target backlog contribution).
    pub lhs: f64,
    /// Right-hand side: (Σ λ_i) · d̄_FCFS(φ) (minimum possible).
    pub rhs: f64,
}

impl SubsetCheck {
    /// True if the subset satisfies Eq. (7) (with a small relative slack
    /// for measurement noise).
    pub fn holds(&self) -> bool {
        self.lhs >= self.rhs * (1.0 - 1e-9) - 1e-12
    }

    /// Slack `lhs − rhs` (negative when violated).
    pub fn slack(&self) -> f64 {
        self.lhs - self.rhs
    }
}

/// The full Eq. (7) report over all 2^N − 1 nonempty subsets.
#[derive(Debug, Clone)]
pub struct FeasibilityReport {
    /// Every subset check performed.
    pub checks: Vec<SubsetCheck>,
    /// Conservation-law cross-check: Σ λ_i·d̄_i vs λ·d̄(λ) on the full set.
    pub conservation_lhs: f64,
    /// See [`FeasibilityReport::conservation_lhs`].
    pub conservation_rhs: f64,
}

impl FeasibilityReport {
    /// True if every subset satisfies Eq. (7).
    pub fn feasible(&self) -> bool {
        self.checks.iter().all(SubsetCheck::holds)
    }

    /// The violated subsets, if any.
    pub fn violations(&self) -> Vec<&SubsetCheck> {
        self.checks.iter().filter(|c| !c.holds()).collect()
    }

    /// Relative gap of the conservation-law cross-check (0 means the
    /// targets exactly redistribute the FCFS aggregate backlog).
    pub fn conservation_gap(&self) -> f64 {
        if self.conservation_rhs == 0.0 {
            0.0
        } else {
            (self.conservation_lhs - self.conservation_rhs).abs() / self.conservation_rhs
        }
    }
}

impl fmt::Display for FeasibilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "feasibility: {} ({} subsets, {} violations, conservation gap {:.3}%)",
            if self.feasible() {
                "FEASIBLE"
            } else {
                "INFEASIBLE"
            },
            self.checks.len(),
            self.violations().len(),
            100.0 * self.conservation_gap()
        )?;
        for c in &self.checks {
            writeln!(
                f,
                "  φ={:?}: Σλd = {:.2} vs λ·d̄_FCFS(φ) = {:.2} [{}]",
                c.classes,
                c.lhs,
                c.rhs,
                if c.holds() { "ok" } else { "VIOLATED" }
            )?;
        }
        Ok(())
    }
}

/// Checks the Eq. (7) feasibility of target average delays `target_delays`
/// (ticks, one per class) for the recorded `arrivals` on a link of `rate`
/// bytes/tick.
///
/// Per-class arrival rates λ_i are measured from the trace itself over its
/// time span.
///
/// # Panics
/// Panics if the trace mentions a class with no target delay.
/// # Example
///
/// ```
/// use stats::check_feasibility;
///
/// // Two classes back-to-back at time 0 on a 1 byte/tick link.
/// let arrivals = vec![(0, 0, 100), (0, 1, 100), (300, 0, 100), (300, 1, 100)];
/// // Demanding near-zero delay for BOTH classes is infeasible: someone
/// // must absorb the backlog.
/// assert!(!check_feasibility(&arrivals, 1.0, &[0.1, 0.1]).feasible());
/// // Letting class 0 carry it is fine.
/// assert!(check_feasibility(&arrivals, 1.0, &[100.0, 0.0]).feasible());
/// ```
pub fn check_feasibility(
    arrivals: &[Arrival],
    rate: f64,
    target_delays: &[f64],
) -> FeasibilityReport {
    let n = target_delays.len();
    assert!(
        arrivals.iter().all(|&(_, c, _)| (c as usize) < n),
        "trace contains classes without target delays"
    );
    // Measure per-class packet rates over the trace span.
    let span = match (arrivals.first(), arrivals.last()) {
        (Some(&(t0, _, _)), Some(&(t1, _, _))) if t1 > t0 => (t1 - t0) as f64,
        _ => 1.0,
    };
    let mut counts = vec![0u64; n];
    for &(_, c, _) in arrivals {
        counts[c as usize] += 1;
    }
    let lambda: Vec<f64> = counts.iter().map(|&c| c as f64 / span).collect();

    let mut checks = Vec::new();
    // All nonempty subsets of {0..n}, the full set included (its constraint
    // is the conservation-law lower bound on the total backlog).
    for mask in 1..(1u32 << n) {
        let classes: Vec<u8> = (0..n as u8).filter(|&c| mask & (1 << c) != 0).collect();
        let idx: Vec<usize> = classes.iter().map(|&c| c as usize).collect();
        let lhs: f64 = idx.iter().map(|&i| lambda[i] * target_delays[i]).sum();
        let subset_lambda: f64 = idx.iter().map(|&i| lambda[i]).sum();
        let rhs = subset_lambda * fcfs_mean_wait(arrivals, Some(&classes), rate);
        checks.push(SubsetCheck { classes, lhs, rhs });
    }
    let conservation_lhs: f64 = (0..n).map(|i| lambda[i] * target_delays[i]).sum();
    let total_lambda: f64 = lambda.iter().sum();
    let conservation_rhs = total_lambda * fcfs_mean_wait(arrivals, None, rate);
    FeasibilityReport {
        checks,
        conservation_lhs,
        conservation_rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn fcfs_wait_simple_backlog() {
        // Two 100-byte packets at t=0 on a 1 byte/tick link: waits 0 and 100.
        let tr = vec![(0, 0, 100), (0, 1, 100)];
        assert_eq!(fcfs_mean_wait(&tr, None, 1.0), 50.0);
        // Filtered to class 0 only: no queueing at all.
        assert_eq!(fcfs_mean_wait(&tr, Some(&[0]), 1.0), 0.0);
    }

    #[test]
    fn fcfs_wait_respects_idle_gaps() {
        let tr = vec![(0, 0, 100), (500, 0, 100), (510, 0, 100)];
        // Waits: 0, 0, 90.
        assert!((fcfs_mean_wait(&tr, None, 1.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn fcfs_empty_is_zero() {
        assert_eq!(fcfs_mean_wait(&[], None, 1.0), 0.0);
        assert_eq!(fcfs_mean_wait(&[(0, 1, 10)], Some(&[0]), 1.0), 0.0);
    }

    fn poisson_trace(seed: u64, n: usize, mean_gap: f64) -> Vec<Arrival> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        (0..n)
            .map(|_| {
                t += -mean_gap * (1.0 - rng.random::<f64>()).ln();
                let class = if rng.random::<f64>() < 0.5 { 0 } else { 1 };
                (t.round() as u64, class, 100u32)
            })
            .collect()
    }

    #[test]
    fn mm1_like_wait_matches_theory() {
        // M/D/1 with ρ=0.8: Wq = ρ·S/(2(1−ρ)) = 0.8·100/0.4 = 200 ticks.
        let tr = poisson_trace(3, 400_000, 125.0);
        let w = fcfs_mean_wait(&tr, None, 1.0);
        assert!((w - 200.0).abs() / 200.0 < 0.05, "wait {w}");
    }

    #[test]
    fn equal_targets_at_fcfs_levels_are_feasible() {
        // Targets exactly matching what FCFS delivers must be feasible:
        // the FCFS point is inside the feasible region.
        let tr = poisson_trace(5, 200_000, 125.0);
        let agg = fcfs_mean_wait(&tr, None, 1.0);
        let report = check_feasibility(&tr, 1.0, &[agg, agg]);
        assert!(report.feasible(), "{report}");
        assert!(report.conservation_gap() < 1e-6);
    }

    #[test]
    fn impossible_targets_are_flagged() {
        // Demanding near-zero delay for BOTH classes violates Eq. (7):
        // someone has to carry the backlog.
        let tr = poisson_trace(7, 200_000, 110.0);
        let report = check_feasibility(&tr, 1.0, &[0.01, 0.01]);
        assert!(!report.feasible());
        assert!(!report.violations().is_empty());
    }

    #[test]
    fn proportional_targets_from_conservation_are_feasible_at_mild_spread() {
        // Build Eq. (6) targets for δ ratio 2 from the measured aggregate
        // and verify they pass — mirroring the paper's claim that Figs. 1–2
        // operate in the feasible region.
        let tr = poisson_trace(11, 300_000, 110.0);
        let agg = fcfs_mean_wait(&tr, None, 1.0);
        // Class rates measured from the trace itself; δ0 = 1, δ1 = 0.5.
        // Eq. (6): d_i = δ_i · λ · d̄(λ) / Σ_j δ_j λ_j.
        let mut counts = [0f64; 2];
        for &(_, c, _) in &tr {
            counts[c as usize] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let lam = [counts[0] / total, counts[1] / total];
        let delta = [1.0, 0.5];
        let denom: f64 = lam.iter().zip(&delta).map(|(l, d)| l * d).sum();
        let d: Vec<f64> = delta.iter().map(|&di| di * agg / denom).collect();
        // Conservation check: λ0 d0 + λ1 d1 = λ d̄.
        let report = check_feasibility(&tr, 1.0, &d);
        assert!(
            report.conservation_gap() < 1e-6,
            "gap {}",
            report.conservation_gap()
        );
        assert!(report.feasible(), "{report}");
    }

    #[test]
    #[should_panic(expected = "classes without target delays")]
    fn unknown_class_panics() {
        check_feasibility(&[(0, 3, 10)], 1.0, &[1.0, 1.0]);
    }

    #[test]
    fn display_formats_report() {
        let tr = vec![(0, 0, 100), (0, 1, 100), (10, 0, 100), (20, 1, 100)];
        let report = check_feasibility(&tr, 1.0, &[100.0, 50.0]);
        let s = report.to_string();
        assert!(s.contains("feasibility:"));
        assert!(s.contains("φ="));
    }
}
