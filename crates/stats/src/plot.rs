//! Minimal ASCII scatter/line plots for terminal figure output.
//!
//! The experiment binaries regenerate the paper's *figures*, so beyond the
//! numeric tables they draw the series as text plots — enough to see the
//! convergence shapes of Fig. 1/3 without leaving the terminal.

/// A fixed-size ASCII plot holding one or more point series.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    width: usize,
    height: usize,
    log_x: bool,
    series: Vec<(char, Vec<(f64, f64)>)>,
    hlines: Vec<f64>,
}

impl AsciiPlot {
    /// Creates an empty plot grid of `width`×`height` characters.
    ///
    /// # Panics
    /// Panics if either dimension is smaller than 8 (unreadably small).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "plot must be at least 8x8");
        AsciiPlot {
            width,
            height,
            log_x: false,
            series: Vec::new(),
            hlines: Vec::new(),
        }
    }

    /// Scales the x-axis logarithmically (for timescale sweeps).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Adds a series drawn with `marker`. Non-finite points are skipped.
    pub fn series(mut self, marker: char, points: &[(f64, f64)]) -> Self {
        self.series.push((
            marker,
            points
                .iter()
                .copied()
                .filter(|&(x, y)| x.is_finite() && y.is_finite())
                .collect(),
        ));
        self
    }

    /// Adds a horizontal reference line (e.g. the target ratio).
    pub fn hline(mut self, y: f64) -> Self {
        self.hlines.push(y);
        self
    }

    fn x_of(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(f64::MIN_POSITIVE).ln()
        } else {
            x
        }
    }

    /// Renders the plot with y-range labels on the left and the x-range on
    /// the bottom line. Returns a placeholder note when no points exist.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        if pts.is_empty() {
            return "(no data to plot)\n".to_string();
        }
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            xmin = xmin.min(self.x_of(x));
            xmax = xmax.max(self.x_of(x));
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        for &y in &self.hlines {
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
        // Pad degenerate ranges so single points render mid-grid.
        if xmax - xmin < 1e-12 {
            xmin -= 0.5;
            xmax += 0.5;
        }
        if ymax - ymin < 1e-12 {
            ymin -= 0.5;
            ymax += 0.5;
        }
        let col = |x: f64| -> usize {
            let f = (self.x_of(x) - xmin) / (xmax - xmin);
            ((f * (self.width - 1) as f64).round() as usize).min(self.width - 1)
        };
        let row = |y: f64| -> usize {
            let f = (y - ymin) / (ymax - ymin);
            let r = (f * (self.height - 1) as f64).round() as usize;
            (self.height - 1) - r.min(self.height - 1)
        };
        let mut grid = vec![vec![' '; self.width]; self.height];
        for &y in &self.hlines {
            let r = row(y);
            for cell in &mut grid[r] {
                *cell = '-';
            }
        }
        for (marker, points) in &self.series {
            for &(x, y) in points {
                grid[row(y)][col(x)] = *marker;
            }
        }
        let label_w = 9;
        let mut out = String::new();
        for (i, line) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{ymax:>8.2} ")
            } else if i == self.height - 1 {
                format!("{ymin:>8.2} ")
            } else {
                " ".repeat(label_w)
            };
            out.push_str(&label);
            out.push('|');
            out.push_str(&line.iter().collect::<String>());
            out.push('\n');
        }
        out.push_str(&" ".repeat(label_w));
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        let (xl, xr) = if self.log_x {
            (xmin.exp(), xmax.exp())
        } else {
            (xmin, xmax)
        };
        out.push_str(&format!(
            "{}{:<w$}{:>w2$}\n",
            " ".repeat(label_w + 1),
            format_num(xl),
            format_num(xr),
            w = self.width / 2,
            w2 = self.width - self.width / 2
        ));
        out
    }
}

fn format_num(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_on_the_grid() {
        let p = AsciiPlot::new(20, 10)
            .series('W', &[(0.0, 1.0), (1.0, 2.0)])
            .render();
        assert_eq!(p.matches('W').count(), 2);
        // y-range labels present.
        assert!(p.contains("2.00"));
        assert!(p.contains("1.00"));
    }

    #[test]
    fn hline_spans_the_width() {
        let p = AsciiPlot::new(16, 8)
            .series('x', &[(0.0, 0.0), (1.0, 4.0)])
            .hline(2.0)
            .render();
        let dash_line = p.lines().find(|l| l.matches('-').count() >= 16).unwrap();
        assert!(dash_line.contains('|'));
    }

    #[test]
    fn empty_plot_is_graceful() {
        assert_eq!(AsciiPlot::new(10, 10).render(), "(no data to plot)\n");
        let only_nan = AsciiPlot::new(10, 10)
            .series('a', &[(f64::NAN, 1.0)])
            .render();
        assert!(only_nan.contains("no data"));
    }

    #[test]
    fn single_point_renders_mid_grid() {
        let p = AsciiPlot::new(12, 9).series('o', &[(5.0, 5.0)]).render();
        assert_eq!(p.matches('o').count(), 1);
    }

    #[test]
    fn log_x_orders_decades_evenly() {
        let p = AsciiPlot::new(30, 8)
            .log_x()
            .series('m', &[(10.0, 1.0), (100.0, 2.0), (1000.0, 3.0)]);
        let text = p.render();
        // Columns of the three markers should be roughly evenly spaced.
        let cols: Vec<usize> = text.lines().filter_map(|l| l.find('m')).collect();
        assert_eq!(cols.len(), 3);
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        let gap1 = sorted[1] - sorted[0];
        let gap2 = sorted[2] - sorted[1];
        assert!(
            (gap1 as i64 - gap2 as i64).abs() <= 2,
            "gaps {gap1} vs {gap2}"
        );
        assert!(text.contains("10.00"));
        assert!(text.contains("1000"));
    }

    #[test]
    #[should_panic(expected = "at least 8x8")]
    fn tiny_grid_rejected() {
        let _ = AsciiPlot::new(2, 2);
    }

    #[test]
    fn multiple_series_keep_markers() {
        let p = AsciiPlot::new(20, 10)
            .series('W', &[(0.0, 1.0)])
            .series('B', &[(1.0, 2.0)])
            .render();
        assert!(p.contains('W'));
        assert!(p.contains('B'));
    }
}
