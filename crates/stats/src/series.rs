//! Per-class average delays over consecutive monitoring intervals.
//!
//! Implements the measurement of Eq. (2): `d̄_i(t, t+τ)` is the average
//! queueing delay of class-i packets *departing* in the interval
//! `(t, t+τ)`; undefined when no class-i packet departs.

use simcore::Time;

/// Accumulates `(departure_time, class, delay)` triples into fixed-width
/// intervals and reports per-interval per-class average delays.
/// # Example
///
/// ```
/// use simcore::Time;
/// use stats::{rd_for_interval, IntervalSeries};
///
/// let mut s = IntervalSeries::new(2, 100);
/// s.record(Time::from_ticks(10), 0, 40.0); // class 0 departure, delay 40
/// s.record(Time::from_ticks(20), 1, 20.0); // class 1 departure, delay 20
/// let avgs = s.interval_averages(0);
/// assert_eq!(rd_for_interval(&avgs), Some(2.0)); // d̄0/d̄1 in this window
/// ```
#[derive(Debug, Clone)]
pub struct IntervalSeries {
    tau: u64,
    num_classes: usize,
    /// `sums[k][c]`, `counts[k][c]` for interval k.
    sums: Vec<Vec<f64>>,
    counts: Vec<Vec<u64>>,
}

impl IntervalSeries {
    /// Creates a series with monitoring timescale `tau` ticks.
    ///
    /// # Panics
    /// Panics if `tau` is zero or there are no classes.
    pub fn new(num_classes: usize, tau: u64) -> Self {
        assert!(tau > 0, "monitoring timescale must be positive");
        assert!(num_classes > 0, "need at least one class");
        IntervalSeries {
            tau,
            num_classes,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Records a departure of `class` at `at` with queueing delay
    /// `delay_ticks`.
    pub fn record(&mut self, at: Time, class: usize, delay_ticks: f64) {
        assert!(class < self.num_classes, "class out of range");
        let k = (at.ticks() / self.tau) as usize;
        if k >= self.sums.len() {
            self.sums.resize(k + 1, vec![0.0; self.num_classes]);
            self.counts.resize(k + 1, vec![0; self.num_classes]);
        }
        self.sums[k][class] += delay_ticks;
        self.counts[k][class] += 1;
    }

    /// The monitoring timescale in ticks.
    pub fn tau(&self) -> u64 {
        self.tau
    }

    /// Number of classes tracked.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Merges `other` into `self` by summing per-interval per-class delay
    /// sums and departure counts — the result is exactly the series that
    /// would have recorded both departure streams. Integer counts merge
    /// bit-identically; delay sums merge bit-identically whenever the
    /// recorded delays are integer-valued ticks below 2⁵³ (the simulator's
    /// case), because f64 addition of exactly-representable integers is
    /// exact and therefore order-independent.
    ///
    /// # Panics
    /// Panics if the two series disagree on `tau` or the class count.
    pub fn merge(&mut self, other: &IntervalSeries) {
        assert_eq!(
            self.tau, other.tau,
            "cannot merge series with different tau"
        );
        assert_eq!(
            self.num_classes, other.num_classes,
            "cannot merge series with different class counts"
        );
        if other.sums.len() > self.sums.len() {
            self.sums
                .resize(other.sums.len(), vec![0.0; self.num_classes]);
            self.counts
                .resize(other.counts.len(), vec![0; self.num_classes]);
        }
        for (k, (osums, ocounts)) in other.sums.iter().zip(&other.counts).enumerate() {
            for c in 0..self.num_classes {
                self.sums[k][c] += osums[c];
                self.counts[k][c] += ocounts[c];
            }
        }
    }

    /// Number of intervals touched so far.
    pub fn num_intervals(&self) -> usize {
        self.sums.len()
    }

    /// Per-class average delay in interval `k`; `None` for classes with no
    /// departures in that interval (the paper's "undefined").
    pub fn interval_averages(&self, k: usize) -> Vec<Option<f64>> {
        (0..self.num_classes)
            .map(|c| {
                let n = self.counts[k][c];
                (n > 0).then(|| self.sums[k][c] / n as f64)
            })
            .collect()
    }

    /// Iterates over all intervals' average-delay vectors.
    pub fn iter_averages(&self) -> impl Iterator<Item = Vec<Option<f64>>> + '_ {
        (0..self.num_intervals()).map(|k| self.interval_averages(k))
    }

    /// Per-interval *total* departures (all classes).
    pub fn interval_departures(&self, k: usize) -> u64 {
        self.counts[k].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn departures_bucket_by_interval() {
        let mut s = IntervalSeries::new(2, 100);
        s.record(Time::from_ticks(10), 0, 5.0);
        s.record(Time::from_ticks(90), 0, 15.0);
        s.record(Time::from_ticks(150), 1, 30.0);
        assert_eq!(s.num_intervals(), 2);
        let k0 = s.interval_averages(0);
        assert_eq!(k0[0], Some(10.0));
        assert_eq!(k0[1], None);
        let k1 = s.interval_averages(1);
        assert_eq!(k1[0], None);
        assert_eq!(k1[1], Some(30.0));
        assert_eq!(s.interval_departures(0), 2);
    }

    #[test]
    fn boundary_tick_goes_to_next_interval() {
        let mut s = IntervalSeries::new(1, 100);
        s.record(Time::from_ticks(100), 0, 1.0);
        assert_eq!(s.num_intervals(), 2);
        assert_eq!(s.interval_averages(0)[0], None);
        assert_eq!(s.interval_averages(1)[0], Some(1.0));
    }

    #[test]
    fn iter_covers_all_intervals() {
        let mut s = IntervalSeries::new(1, 10);
        s.record(Time::from_ticks(35), 0, 2.0);
        let all: Vec<_> = s.iter_averages().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3][0], Some(2.0));
    }

    #[test]
    #[should_panic(expected = "monitoring timescale must be positive")]
    fn zero_tau_rejected() {
        let _ = IntervalSeries::new(2, 0);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn class_bounds_checked() {
        let mut s = IntervalSeries::new(2, 10);
        s.record(Time::ZERO, 5, 1.0);
    }

    #[test]
    fn merge_sums_intervals_elementwise() {
        let mut a = IntervalSeries::new(2, 100);
        a.record(Time::from_ticks(10), 0, 4.0);
        let mut b = IntervalSeries::new(2, 100);
        b.record(Time::from_ticks(20), 0, 8.0);
        b.record(Time::from_ticks(150), 1, 3.0);
        a.merge(&b);
        assert_eq!(a.num_intervals(), 2);
        assert_eq!(a.interval_averages(0)[0], Some(6.0));
        assert_eq!(a.interval_averages(1)[1], Some(3.0));
    }

    #[test]
    #[should_panic(expected = "different tau")]
    fn merge_rejects_tau_mismatch() {
        let mut a = IntervalSeries::new(2, 100);
        a.merge(&IntervalSeries::new(2, 50));
    }

    #[test]
    #[should_panic(expected = "different class counts")]
    fn merge_rejects_class_mismatch() {
        let mut a = IntervalSeries::new(2, 100);
        a.merge(&IntervalSeries::new(3, 100));
    }

    mod merge_laws {
        use super::*;
        use proptest::prelude::*;

        /// (tick, class, integer-valued delay) streams: the simulator only
        /// ever records whole-tick delays, under which f64 sums are exact.
        fn stream() -> impl Strategy<Value = Vec<(u64, usize, f64)>> {
            prop::collection::vec(
                (
                    0u64..5_000,
                    0usize..3,
                    (0u64..1u64 << 30).prop_map(|d| d as f64),
                ),
                0..60,
            )
        }

        fn series(events: &[(u64, usize, f64)]) -> IntervalSeries {
            let mut s = IntervalSeries::new(3, 250);
            for &(t, c, d) in events {
                s.record(Time::from_ticks(t), c, d);
            }
            s
        }

        fn snapshot(s: &IntervalSeries) -> Vec<(u64, Vec<Option<f64>>)> {
            (0..s.num_intervals())
                .map(|k| (s.interval_departures(k), s.interval_averages(k)))
                .collect()
        }

        proptest! {
            #[test]
            fn associative(a in stream(), b in stream(), c in stream()) {
                let mut left = series(&a);
                let mut bc = series(&b);
                bc.merge(&series(&c));
                left.merge(&bc);

                let mut right = series(&a);
                right.merge(&series(&b));
                right.merge(&series(&c));

                prop_assert_eq!(snapshot(&left), snapshot(&right));
            }

            #[test]
            fn commutative(a in stream(), b in stream()) {
                let mut ab = series(&a);
                ab.merge(&series(&b));
                let mut ba = series(&b);
                ba.merge(&series(&a));
                prop_assert_eq!(snapshot(&ab), snapshot(&ba));
            }

            #[test]
            fn empty_is_identity(a in stream()) {
                let mut merged = series(&a);
                merged.merge(&IntervalSeries::new(3, 250));
                prop_assert_eq!(snapshot(&merged), snapshot(&series(&a)));
            }

            /// Sharding the departure stream and merging is bit-identical
            /// to single-stream accumulation (integer-tick delays).
            #[test]
            fn sharded_equals_single_stream(events in stream(), cut in 0usize..60) {
                let cut = cut.min(events.len());
                let mut sharded = series(&events[..cut]);
                sharded.merge(&series(&events[cut..]));
                prop_assert_eq!(snapshot(&sharded), snapshot(&series(&events)));
            }
        }
    }
}
