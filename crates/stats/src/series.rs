//! Per-class average delays over consecutive monitoring intervals.
//!
//! Implements the measurement of Eq. (2): `d̄_i(t, t+τ)` is the average
//! queueing delay of class-i packets *departing* in the interval
//! `(t, t+τ)`; undefined when no class-i packet departs.

use simcore::Time;

/// Accumulates `(departure_time, class, delay)` triples into fixed-width
/// intervals and reports per-interval per-class average delays.
/// # Example
///
/// ```
/// use simcore::Time;
/// use stats::{rd_for_interval, IntervalSeries};
///
/// let mut s = IntervalSeries::new(2, 100);
/// s.record(Time::from_ticks(10), 0, 40.0); // class 0 departure, delay 40
/// s.record(Time::from_ticks(20), 1, 20.0); // class 1 departure, delay 20
/// let avgs = s.interval_averages(0);
/// assert_eq!(rd_for_interval(&avgs), Some(2.0)); // d̄0/d̄1 in this window
/// ```
#[derive(Debug, Clone)]
pub struct IntervalSeries {
    tau: u64,
    num_classes: usize,
    /// `sums[k][c]`, `counts[k][c]` for interval k.
    sums: Vec<Vec<f64>>,
    counts: Vec<Vec<u64>>,
}

impl IntervalSeries {
    /// Creates a series with monitoring timescale `tau` ticks.
    ///
    /// # Panics
    /// Panics if `tau` is zero or there are no classes.
    pub fn new(num_classes: usize, tau: u64) -> Self {
        assert!(tau > 0, "monitoring timescale must be positive");
        assert!(num_classes > 0, "need at least one class");
        IntervalSeries {
            tau,
            num_classes,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Records a departure of `class` at `at` with queueing delay
    /// `delay_ticks`.
    pub fn record(&mut self, at: Time, class: usize, delay_ticks: f64) {
        assert!(class < self.num_classes, "class out of range");
        let k = (at.ticks() / self.tau) as usize;
        if k >= self.sums.len() {
            self.sums.resize(k + 1, vec![0.0; self.num_classes]);
            self.counts.resize(k + 1, vec![0; self.num_classes]);
        }
        self.sums[k][class] += delay_ticks;
        self.counts[k][class] += 1;
    }

    /// The monitoring timescale in ticks.
    pub fn tau(&self) -> u64 {
        self.tau
    }

    /// Number of intervals touched so far.
    pub fn num_intervals(&self) -> usize {
        self.sums.len()
    }

    /// Per-class average delay in interval `k`; `None` for classes with no
    /// departures in that interval (the paper's "undefined").
    pub fn interval_averages(&self, k: usize) -> Vec<Option<f64>> {
        (0..self.num_classes)
            .map(|c| {
                let n = self.counts[k][c];
                (n > 0).then(|| self.sums[k][c] / n as f64)
            })
            .collect()
    }

    /// Iterates over all intervals' average-delay vectors.
    pub fn iter_averages(&self) -> impl Iterator<Item = Vec<Option<f64>>> + '_ {
        (0..self.num_intervals()).map(|k| self.interval_averages(k))
    }

    /// Per-interval *total* departures (all classes).
    pub fn interval_departures(&self, k: usize) -> u64 {
        self.counts[k].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn departures_bucket_by_interval() {
        let mut s = IntervalSeries::new(2, 100);
        s.record(Time::from_ticks(10), 0, 5.0);
        s.record(Time::from_ticks(90), 0, 15.0);
        s.record(Time::from_ticks(150), 1, 30.0);
        assert_eq!(s.num_intervals(), 2);
        let k0 = s.interval_averages(0);
        assert_eq!(k0[0], Some(10.0));
        assert_eq!(k0[1], None);
        let k1 = s.interval_averages(1);
        assert_eq!(k1[0], None);
        assert_eq!(k1[1], Some(30.0));
        assert_eq!(s.interval_departures(0), 2);
    }

    #[test]
    fn boundary_tick_goes_to_next_interval() {
        let mut s = IntervalSeries::new(1, 100);
        s.record(Time::from_ticks(100), 0, 1.0);
        assert_eq!(s.num_intervals(), 2);
        assert_eq!(s.interval_averages(0)[0], None);
        assert_eq!(s.interval_averages(1)[0], Some(1.0));
    }

    #[test]
    fn iter_covers_all_intervals() {
        let mut s = IntervalSeries::new(1, 10);
        s.record(Time::from_ticks(35), 0, 2.0);
        let all: Vec<_> = s.iter_averages().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3][0], Some(2.0));
    }

    #[test]
    #[should_panic(expected = "monitoring timescale must be positive")]
    fn zero_tau_rejected() {
        let _ = IntervalSeries::new(2, 0);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn class_bounds_checked() {
        let mut s = IntervalSeries::new(2, 10);
        s.record(Time::ZERO, 5, 1.0);
    }
}
