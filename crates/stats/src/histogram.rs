//! Log-binned histograms for delay distributions.

/// A base-2 log-binned histogram of nonnegative values.
///
/// Bin k counts values in `[2^(k−1), 2^k)` (bin 0 holds `[0, 1)`), which
/// suits queueing delays whose interesting structure spans several orders
/// of magnitude.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a histogram from raw bin counts, the inverse of
    /// [`bins`](Self::bins) — the deserialization half of shipping
    /// histograms between worker processes.
    ///
    /// ```
    /// use stats::Histogram;
    ///
    /// let mut h = Histogram::new();
    /// h.record_u64(3);
    /// h.record_u64(100);
    /// let rebuilt = Histogram::from_bins(h.bins().to_vec());
    /// assert_eq!(rebuilt.bins(), h.bins());
    /// assert_eq!(rebuilt.count(), h.count());
    /// ```
    pub fn from_bins(bins: Vec<u64>) -> Self {
        Histogram { bins }
    }

    /// Records a value.
    ///
    /// # Panics
    /// Panics if `x` is negative or non-finite.
    pub fn record(&mut self, x: f64) {
        assert!(
            x >= 0.0 && x.is_finite(),
            "histogram values must be finite and >= 0"
        );
        let bin = if x < 1.0 {
            0
        } else {
            x.log2().floor() as usize + 1
        };
        self.bump(bin);
    }

    /// Records an integer value on the pure-integer fast path (no float
    /// log). Bins identically to [`record`](Self::record) for every `u64`
    /// exactly representable as `f64`; on the hot metrics path (delays in
    /// ticks) this avoids the transcendental entirely.
    #[inline]
    pub fn record_u64(&mut self, x: u64) {
        // For x >= 1, floor(log2 x) = 63 - leading_zeros(x), and the value
        // belongs to bin floor(log2 x) + 1; x = 0 lands in bin 0.
        let bin = (64 - x.leading_zeros()) as usize;
        self.bump(bin);
    }

    #[inline]
    fn bump(&mut self, bin: usize) {
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
    }

    /// Merges `other` into `self`: the result is exactly the histogram
    /// that would have recorded both input streams (lossless — log bins
    /// are fixed, so merging is an elementwise integer sum and therefore
    /// associative, commutative, and bit-identical to single-stream
    /// accumulation in any sharding).
    ///
    /// The merge laws that make a histogram shardable:
    ///
    /// ```
    /// use stats::Histogram;
    ///
    /// let mk = |vals: &[u64]| {
    ///     let mut h = Histogram::new();
    ///     vals.iter().for_each(|&v| h.record_u64(v));
    ///     h
    /// };
    /// let (a, b, c) = (mk(&[1, 5]), mk(&[900]), mk(&[0, 7, 7]));
    ///
    /// // Associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), bitwise.
    /// let mut left = a.clone();
    /// left.merge(&b);
    /// left.merge(&c);
    /// let mut bc = b.clone();
    /// bc.merge(&c);
    /// let mut right = a.clone();
    /// right.merge(&bc);
    /// assert_eq!(left.bins(), right.bins());
    ///
    /// // Identity: merging the empty histogram changes nothing.
    /// let mut id = a.clone();
    /// id.merge(&Histogram::new());
    /// assert_eq!(id.bins(), a.bins());
    ///
    /// // Sharded == single-stream, exactly.
    /// let whole = mk(&[1, 5, 900, 0, 7, 7]);
    /// assert_eq!(left.bins(), whole.bins());
    /// ```
    pub fn merge(&mut self, other: &Histogram) {
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (b, &o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
    }

    /// Total recorded values (derived from the bins, so the record hot
    /// path pays for exactly one counter).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The raw bin counts (bin 0 = `[0,1)`, bin k = `[2^(k−1), 2^k)`).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Lower/upper bounds of bin `k`.
    pub fn bin_bounds(k: usize) -> (f64, f64) {
        if k == 0 {
            (0.0, 1.0)
        } else {
            (2f64.powi(k as i32 - 1), 2f64.powi(k as i32))
        }
    }

    /// Fraction of values at or above `threshold` (conservative: counts
    /// whole bins whose lower bound is ≥ threshold).
    pub fn tail_fraction(&self, threshold: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let tail: u64 = self
            .bins
            .iter()
            .enumerate()
            .filter(|&(k, _)| Self::bin_bounds(k).0 >= threshold)
            .map(|(_, &c)| c)
            .sum();
        tail as f64 / count as f64
    }

    /// A compact single-line rendering: `bin_lo:count` pairs of nonempty
    /// bins.
    pub fn render(&self) -> String {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| format!("{}:{}", Self::bin_bounds(k).0, c))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_boundaries() {
        let mut h = Histogram::new();
        for x in [0.0, 0.5, 1.0, 1.9, 2.0, 3.9, 4.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.bins()[0], 2); // 0.0, 0.5
        assert_eq!(h.bins()[1], 2); // 1.0, 1.9
        assert_eq!(h.bins()[2], 2); // 2.0, 3.9
        assert_eq!(h.bins()[3], 1); // 4.0
                                    // 100 lands in [64, 128) = bin 7.
        assert_eq!(h.bins()[7], 1);
    }

    #[test]
    fn bounds_round_trip() {
        assert_eq!(Histogram::bin_bounds(0), (0.0, 1.0));
        assert_eq!(Histogram::bin_bounds(1), (1.0, 2.0));
        assert_eq!(Histogram::bin_bounds(4), (8.0, 16.0));
    }

    #[test]
    fn tail_fraction_counts_high_bins() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        assert!((h.tail_fraction(512.0) - 0.1).abs() < 1e-12);
        assert_eq!(Histogram::new().tail_fraction(1.0), 0.0);
    }

    #[test]
    fn render_skips_empty_bins() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.render(), "4:1");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative() {
        Histogram::new().record(-1.0);
    }

    #[test]
    fn record_u64_matches_float_binning() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for x in [0u64, 1, 2, 3, 4, 7, 8, 100, 441, u32::MAX as u64] {
            a.record(x as f64);
            b.record_u64(x);
        }
        assert_eq!(a.bins(), b.bins());
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn merge_is_lossless() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for x in [0.5, 3.0, 100.0] {
            a.record(x);
            whole.record(x);
        }
        for x in [7.0, 9000.0] {
            b.record(x);
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.bins(), whole.bins());
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(5.0);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a.bins(), before.bins());
        assert_eq!(a.count(), before.count());

        let mut empty = Histogram::new();
        empty.merge(&before);
        assert_eq!(empty.bins(), before.bins());
    }

    mod merge_laws {
        use super::*;
        use proptest::prelude::*;

        fn hist(values: &[u64]) -> Histogram {
            let mut h = Histogram::new();
            for &v in values {
                h.record_u64(v);
            }
            h
        }

        proptest! {
            /// merge(a, merge(b, c)) == merge(merge(a, b), c), bitwise.
            #[test]
            fn associative(
                a in prop::collection::vec(0u64..1u64 << 40, 0..50),
                b in prop::collection::vec(0u64..1u64 << 40, 0..50),
                c in prop::collection::vec(0u64..1u64 << 40, 0..50),
            ) {
                let mut left = hist(&a);
                let mut bc = hist(&b);
                bc.merge(&hist(&c));
                left.merge(&bc);

                let mut right = hist(&a);
                right.merge(&hist(&b));
                right.merge(&hist(&c));

                prop_assert_eq!(left.bins(), right.bins());
                prop_assert_eq!(left.count(), right.count());
            }

            /// merge(a, b) == merge(b, a), bitwise.
            #[test]
            fn commutative(
                a in prop::collection::vec(0u64..1u64 << 40, 0..50),
                b in prop::collection::vec(0u64..1u64 << 40, 0..50),
            ) {
                let mut ab = hist(&a);
                ab.merge(&hist(&b));
                let mut ba = hist(&b);
                ba.merge(&hist(&a));
                prop_assert_eq!(ab.bins(), ba.bins());
            }

            /// Sharding a stream arbitrarily and merging reproduces the
            /// single-stream histogram exactly.
            #[test]
            fn sharded_equals_single_stream(
                values in prop::collection::vec(0u64..1u64 << 40, 0..120),
                cut in 0usize..120,
            ) {
                let cut = cut.min(values.len());
                let mut sharded = hist(&values[..cut]);
                sharded.merge(&hist(&values[cut..]));
                let whole = hist(&values);
                prop_assert_eq!(sharded.bins(), whole.bins());
                prop_assert_eq!(sharded.count(), whole.count());
            }
        }
    }
}
