//! Log-binned histograms for delay distributions.

/// A base-2 log-binned histogram of nonnegative values.
///
/// Bin k counts values in `[2^(k−1), 2^k)` (bin 0 holds `[0, 1)`), which
/// suits queueing delays whose interesting structure spans several orders
/// of magnitude.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a value.
    ///
    /// # Panics
    /// Panics if `x` is negative or non-finite.
    pub fn record(&mut self, x: f64) {
        assert!(
            x >= 0.0 && x.is_finite(),
            "histogram values must be finite and >= 0"
        );
        let bin = if x < 1.0 {
            0
        } else {
            x.log2().floor() as usize + 1
        };
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += 1;
        self.count += 1;
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw bin counts (bin 0 = `[0,1)`, bin k = `[2^(k−1), 2^k)`).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Lower/upper bounds of bin `k`.
    pub fn bin_bounds(k: usize) -> (f64, f64) {
        if k == 0 {
            (0.0, 1.0)
        } else {
            (2f64.powi(k as i32 - 1), 2f64.powi(k as i32))
        }
    }

    /// Fraction of values at or above `threshold` (conservative: counts
    /// whole bins whose lower bound is ≥ threshold).
    pub fn tail_fraction(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let tail: u64 = self
            .bins
            .iter()
            .enumerate()
            .filter(|&(k, _)| Self::bin_bounds(k).0 >= threshold)
            .map(|(_, &c)| c)
            .sum();
        tail as f64 / self.count as f64
    }

    /// A compact single-line rendering: `bin_lo:count` pairs of nonempty
    /// bins.
    pub fn render(&self) -> String {
        self.bins
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| format!("{}:{}", Self::bin_bounds(k).0, c))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_boundaries() {
        let mut h = Histogram::new();
        for x in [0.0, 0.5, 1.0, 1.9, 2.0, 3.9, 4.0, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.bins()[0], 2); // 0.0, 0.5
        assert_eq!(h.bins()[1], 2); // 1.0, 1.9
        assert_eq!(h.bins()[2], 2); // 2.0, 3.9
        assert_eq!(h.bins()[3], 1); // 4.0
                                    // 100 lands in [64, 128) = bin 7.
        assert_eq!(h.bins()[7], 1);
    }

    #[test]
    fn bounds_round_trip() {
        assert_eq!(Histogram::bin_bounds(0), (0.0, 1.0));
        assert_eq!(Histogram::bin_bounds(1), (1.0, 2.0));
        assert_eq!(Histogram::bin_bounds(4), (8.0, 16.0));
    }

    #[test]
    fn tail_fraction_counts_high_bins() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        assert!((h.tail_fraction(512.0) - 0.1).abs() < 1e-12);
        assert_eq!(Histogram::new().tail_fraction(1.0), 0.0);
    }

    #[test]
    fn render_skips_empty_bins() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.render(), "4:1");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative() {
        Histogram::new().record(-1.0);
    }
}
