//! Quantile estimation: exact (sorted, interpolated) and streaming (P²).

/// Exact quantile of a **sorted** slice with linear interpolation, using
/// the common `(n−1)·q` positioning (NumPy's default).
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or the slice is empty.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "slice must be sorted"
    );
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Convenience holder: sorts once, answers many quantile queries.
#[derive(Debug, Clone)]
pub struct Percentiles {
    sorted: Vec<f64>,
}

impl Percentiles {
    /// Builds from unsorted samples. Non-finite values are rejected.
    ///
    /// # Panics
    /// Panics if any sample is NaN/±∞.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Percentiles { sorted: samples }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Quantile `q ∈ [0,1]`; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        (!self.sorted.is_empty()).then(|| percentile(&self.sorted, q))
    }

    /// The paper's five-number summary used in Fig. 3: 5 %, 25 %, 50 %,
    /// 75 %, 95 %.
    pub fn five_number(&self) -> Option<[f64; 5]> {
        if self.sorted.is_empty() {
            return None;
        }
        Some([
            percentile(&self.sorted, 0.05),
            percentile(&self.sorted, 0.25),
            percentile(&self.sorted, 0.50),
            percentile(&self.sorted, 0.75),
            percentile(&self.sorted, 0.95),
        ])
    }

    /// The Study-B ladder: 10 %, 20 %, …, 90 %, 99 % (Table 1's metric
    /// averages over these).
    pub fn study_b_ladder(&self) -> Option<[f64; 10]> {
        if self.sorted.is_empty() {
            return None;
        }
        let mut out = [0.0; 10];
        for (k, slot) in out.iter_mut().enumerate().take(9) {
            *slot = percentile(&self.sorted, 0.1 * (k + 1) as f64);
        }
        out[9] = percentile(&self.sorted, 0.99);
        Some(out)
    }
}

/// The P² (Jain–Chlamtac) streaming quantile estimator: O(1) memory,
/// suitable for the 10⁶-departure runs where storing every delay would be
/// wasteful.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `q` is not strictly inside the unit interval.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "q must be in (0,1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }
        // Find the cell k containing x and update extreme heights.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (1..5).find(|&i| x < self.heights[i]).expect("in range") - 1
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // Adjust interior markers with the piecewise-parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let new_h = self.parabolic(i, d);
                self.heights[i] = if self.heights[i - 1] < new_h && new_h < self.heights[i + 1] {
                    new_h
                } else {
                    self.linear(i, d)
                };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate (exact for fewer than five observations).
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            return Some(percentile(&v, self.q));
        }
        Some(self.heights[2])
    }

    /// Observations fed so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        assert_eq!(percentile(&v, 0.5), 25.0);
        assert!((percentile(&v, 1.0 / 3.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn percentiles_helper_answers_ladders() {
        let p = Percentiles::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(p.count(), 100);
        let five = p.five_number().unwrap();
        assert!((five[2] - 50.5).abs() < 1e-9);
        let ladder = p.study_b_ladder().unwrap();
        assert!((ladder[0] - 10.9).abs() < 1e-9);
        assert!((ladder[9] - 99.01).abs() < 1e-9);
        assert!(Percentiles::new(vec![]).five_number().is_none());
    }

    #[test]
    fn p2_tracks_median_of_uniform() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100_000 {
            est.push(rng.random::<f64>());
        }
        let m = est.estimate().unwrap();
        assert!((m - 0.5).abs() < 0.01, "median {m}");
    }

    #[test]
    fn p2_small_sample_is_exact() {
        let mut est = P2Quantile::new(0.5);
        est.push(3.0);
        est.push(1.0);
        est.push(2.0);
        assert_eq!(est.estimate(), Some(2.0));
        assert!(P2Quantile::new(0.5).estimate().is_none());
    }

    proptest! {
        /// P² stays within a loose band of the exact quantile for smooth
        /// distributions.
        #[test]
        fn prop_p2_close_to_exact(seed in 0u64..100, q in 0.1f64..0.9) {
            let mut rng = StdRng::seed_from_u64(seed);
            let samples: Vec<f64> = (0..20_000).map(|_| rng.random::<f64>()).collect();
            let mut est = P2Quantile::new(q);
            samples.iter().for_each(|&x| est.push(x));
            let exact = {
                let mut s = samples.clone();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                percentile(&s, q)
            };
            let got = est.estimate().unwrap();
            prop_assert!((got - exact).abs() < 0.03, "q={q} got={got} exact={exact}");
        }
    }
}
