//! Streaming summary statistics (Welford's algorithm).

/// Streaming mean/variance/min/max accumulator.
///
/// Numerically stable for long runs (Welford's online update), mergeable
/// across seeds (parallel runs combine with [`Summary::merge`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another summary into this one (Chan's parallel combination).
    ///
    /// The merge laws a shardable summary must satisfy — exact identity,
    /// and associativity up to float rounding (counts and min/max are
    /// exact; mean/variance agree to rounding tolerance):
    ///
    /// ```
    /// use stats::Summary;
    ///
    /// let mk = |xs: &[f64]| {
    ///     let mut s = Summary::new();
    ///     xs.iter().for_each(|&x| s.push(x));
    ///     s
    /// };
    /// let (a, b, c) = (mk(&[1.0, 2.0]), mk(&[10.0]), mk(&[4.0, 4.0, 5.0]));
    ///
    /// // Identity: the empty summary is a true (bitwise) identity element.
    /// let mut id = a.clone();
    /// id.merge(&Summary::new());
    /// assert_eq!(id, a);
    /// let mut empty = Summary::new();
    /// empty.merge(&a);
    /// assert_eq!(empty, a);
    ///
    /// // Associative: (a ⊕ b) ⊕ c ≈ a ⊕ (b ⊕ c).
    /// let mut left = a.clone();
    /// left.merge(&b);
    /// left.merge(&c);
    /// let mut bc = b.clone();
    /// bc.merge(&c);
    /// let mut right = a.clone();
    /// right.merge(&bc);
    /// assert_eq!(left.count(), right.count());
    /// assert_eq!(left.min(), right.min());
    /// assert_eq!(left.max(), right.max());
    /// assert!((left.mean() - right.mean()).abs() < 1e-12);
    /// assert!((left.variance() - right.variance()).abs() < 1e-12);
    /// ```
    ///
    /// Because associativity is only approximate, the experiment farm
    /// never relies on it for byte-identity: shard partials are always
    /// merged in canonical seed order, so every worker count runs the
    /// same float operations in the same order.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    proptest! {
        /// Merging two summaries equals summarizing the concatenation.
        #[test]
        fn prop_merge_equals_concat(
            a in prop::collection::vec(-1e6f64..1e6, 0..50),
            b in prop::collection::vec(-1e6f64..1e6, 0..50),
        ) {
            let mut sa = Summary::new();
            a.iter().for_each(|&x| sa.push(x));
            let mut sb = Summary::new();
            b.iter().for_each(|&x| sb.push(x));
            let mut merged = sa.clone();
            merged.merge(&sb);

            let mut all = Summary::new();
            a.iter().chain(&b).for_each(|&x| all.push(x));

            prop_assert_eq!(merged.count(), all.count());
            prop_assert!((merged.mean() - all.mean()).abs() < 1e-6);
            let tol = 1e-9 * (1.0 + all.variance());
            prop_assert!((merged.variance() - all.variance()).abs() < tol);
        }

        /// merge(a, merge(b, c)) ≈ merge(merge(a, b), c). The Welford
        /// combination is float arithmetic, so associativity holds to
        /// rounding tolerance (counts and min/max are exact).
        #[test]
        fn prop_merge_associative(
            a in prop::collection::vec(-1e6f64..1e6, 0..40),
            b in prop::collection::vec(-1e6f64..1e6, 0..40),
            c in prop::collection::vec(-1e6f64..1e6, 0..40),
        ) {
            let mk = |xs: &[f64]| {
                let mut s = Summary::new();
                xs.iter().for_each(|&x| s.push(x));
                s
            };
            let mut left = mk(&a);
            let mut bc = mk(&b);
            bc.merge(&mk(&c));
            left.merge(&bc);

            let mut right = mk(&a);
            right.merge(&mk(&b));
            right.merge(&mk(&c));

            prop_assert_eq!(left.count(), right.count());
            prop_assert_eq!(left.min(), right.min());
            prop_assert_eq!(left.max(), right.max());
            prop_assert!((left.mean() - right.mean()).abs() < 1e-6);
            let tol = 1e-9 * (1.0 + right.variance());
            prop_assert!((left.variance() - right.variance()).abs() < tol);
        }

        /// merge(a, b) ≈ merge(b, a).
        #[test]
        fn prop_merge_commutative(
            a in prop::collection::vec(-1e6f64..1e6, 0..40),
            b in prop::collection::vec(-1e6f64..1e6, 0..40),
        ) {
            let mk = |xs: &[f64]| {
                let mut s = Summary::new();
                xs.iter().for_each(|&x| s.push(x));
                s
            };
            let mut ab = mk(&a);
            ab.merge(&mk(&b));
            let mut ba = mk(&b);
            ba.merge(&mk(&a));
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert_eq!(ab.min(), ba.min());
            prop_assert_eq!(ab.max(), ba.max());
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6);
            let tol = 1e-9 * (1.0 + ab.variance());
            prop_assert!((ab.variance() - ba.variance()).abs() < tol);
        }

        /// merge(a, empty) == a and merge(empty, a) == a, bitwise — the
        /// empty summary is a true identity element.
        #[test]
        fn prop_merge_empty_identity(a in prop::collection::vec(-1e6f64..1e6, 0..40)) {
            let mut sa = Summary::new();
            a.iter().for_each(|&x| sa.push(x));
            let before = sa.clone();

            sa.merge(&Summary::new());
            prop_assert_eq!(&sa, &before);

            let mut empty = Summary::new();
            empty.merge(&before);
            prop_assert_eq!(&empty, &before);
        }
    }
}
