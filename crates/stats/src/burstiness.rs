//! Traffic burstiness diagnostics.
//!
//! The paper leans on traffic that is "bursty over a wide range of
//! timescales" (§1, §2.1) — that burstiness is *why* static provisioning
//! fails and dynamic schedulers are needed. This module provides the two
//! standard instruments to verify a generated workload actually has that
//! property:
//!
//! * [`idc_curve`] — the Index of Dispersion for Counts,
//!   `IDC(m) = Var(N_m)/E(N_m)` over window size m. Poisson traffic is
//!   flat at 1; heavy-tailed traffic grows with m.
//! * [`variance_time`] — the variance-time curve of the aggregated rate
//!   process, whose log-log slope β estimates the Hurst parameter
//!   `H = 1 + β/2` (H ≈ 0.5 for short-range-dependent traffic, H → 1 for
//!   strongly long-range-dependent traffic).

/// Counts arrivals in consecutive *complete* windows of `window` ticks.
/// The trailing partial window is discarded — including it would inject a
/// huge spurious variance term.
fn window_counts(times: &[u64], window: u64) -> Vec<u64> {
    assert!(window > 0, "window must be positive");
    let Some(&last) = times.last() else {
        return Vec::new();
    };
    let nwin = (last / window) as usize;
    let mut counts = vec![0u64; nwin];
    for &t in times {
        let k = (t / window) as usize;
        if k < nwin {
            counts[k] += 1;
        }
    }
    counts
}

fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

/// The IDC at a ladder of window sizes `base·2^k`, k = 0..levels.
/// Returns `(window_ticks, idc)` pairs. Windows that would leave fewer
/// than 8 blocks are skipped.
///
/// # Panics
/// Panics if `times` is unsorted or `base_window` is zero.
pub fn idc_curve(times: &[u64], base_window: u64, levels: usize) -> Vec<(u64, f64)> {
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "times must be sorted"
    );
    let mut out = Vec::new();
    for k in 0..levels {
        let m = base_window << k;
        let counts = window_counts(times, m);
        if counts.len() < 8 {
            break;
        }
        let xs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let (mean, var) = mean_var(&xs);
        if mean > 0.0 {
            out.push((m, var / mean));
        }
    }
    out
}

/// The variance-time curve: `(window, Var(rate over window))` where rate =
/// count/window, for windows `base·2^k`.
pub fn variance_time(times: &[u64], base_window: u64, levels: usize) -> Vec<(u64, f64)> {
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "times must be sorted"
    );
    let mut out = Vec::new();
    for k in 0..levels {
        let m = base_window << k;
        let counts = window_counts(times, m);
        if counts.len() < 8 {
            break;
        }
        let xs: Vec<f64> = counts.iter().map(|&c| c as f64 / m as f64).collect();
        let (_, var) = mean_var(&xs);
        out.push((m, var));
    }
    out
}

/// Least-squares slope of log(var) vs log(window) from a
/// [`variance_time`] curve, and the implied Hurst estimate `H = 1 + β/2`.
///
/// Returns `None` with fewer than two points or non-positive variances.
pub fn hurst_estimate(curve: &[(u64, f64)]) -> Option<f64> {
    if curve.len() < 2 || curve.iter().any(|&(_, v)| v <= 0.0) {
        return None;
    }
    let pts: Vec<(f64, f64)> = curve
        .iter()
        .map(|&(m, v)| ((m as f64).ln(), v.ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let beta = (n * sxy - sx * sy) / denom;
    Some(1.0 + beta / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn arrivals(seed: u64, n: usize, pareto: bool) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        (0..n)
            .map(|_| {
                let u = 1.0 - rng.random::<f64>();
                // Mean gap 100 in both cases.
                let gap = if pareto {
                    (100.0 * 0.9 / 1.9) * u.powf(-1.0 / 1.9)
                } else {
                    -100.0 * u.ln()
                };
                t += gap;
                t.round() as u64
            })
            .collect()
    }

    #[test]
    fn poisson_idc_is_flat_near_one() {
        let times = arrivals(1, 400_000, false);
        let curve = idc_curve(&times, 1_000, 8);
        assert!(curve.len() >= 6);
        for &(m, idc) in &curve {
            assert!((idc - 1.0).abs() < 0.25, "IDC({m}) = {idc}");
        }
    }

    #[test]
    fn pareto_idc_grows_with_timescale() {
        let times = arrivals(2, 400_000, true);
        let curve = idc_curve(&times, 1_000, 8);
        let first = curve.first().unwrap().1;
        let last = curve.last().unwrap().1;
        assert!(
            last > first * 2.0,
            "expected growing IDC, got {first} -> {last}"
        );
        assert!(last > 3.0, "heavy-tail IDC should be large, got {last}");
    }

    #[test]
    fn hurst_orders_poisson_below_pareto() {
        let poisson = arrivals(3, 400_000, false);
        let pareto = arrivals(4, 400_000, true);
        let h_poisson = hurst_estimate(&variance_time(&poisson, 1_000, 8)).unwrap();
        let h_pareto = hurst_estimate(&variance_time(&pareto, 1_000, 8)).unwrap();
        assert!((0.35..0.65).contains(&h_poisson), "Poisson H = {h_poisson}");
        assert!(
            h_pareto > h_poisson + 0.02,
            "Pareto H = {h_pareto} vs Poisson H = {h_poisson}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(idc_curve(&[], 100, 4).is_empty());
        assert!(hurst_estimate(&[]).is_none());
        assert!(hurst_estimate(&[(100, 1.0)]).is_none());
        assert!(hurst_estimate(&[(100, 0.0), (200, 1.0)]).is_none());
    }

    #[test]
    fn window_counting_boundaries() {
        // The trailing partial window [200, 250) is discarded.
        let counts = window_counts(&[0, 99, 100, 250], 100);
        assert_eq!(counts, vec![2, 1]);
    }
}
