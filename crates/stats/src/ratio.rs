//! The R_D figure of merit (§5, Fig. 3).
//!
//! For one monitoring interval, R_D is the average of the delay ratios
//! between successive classes. When some classes are inactive (no
//! departures), the paper "normalizes the ratios of average delays of the
//! active classes": a ratio between active classes i < j spanning `j − i`
//! class steps contributes its **geometric per-step value**
//! `(d̄_i/d̄_j)^(1/(j−i))`, so intervals with gaps remain comparable to the
//! per-step target s_{i+1}/s_i.

/// Per-step delay ratios between *successive active* classes of one
/// interval's average-delay vector (class 0 first). Ratios are
/// `lower_class_delay / higher_class_delay`, geometrically normalized per
/// class step.
///
/// Ratios with a zero higher-class delay are skipped (no finite ratio
/// exists); an all-`None` or single-active-class vector yields an empty
/// result.
///
/// ```
/// use stats::{rd_for_interval, successive_ratios};
///
/// // Delays 8,4,2,1 → per-step ratios 2,2,2 → R_D = 2 (on target).
/// let avgs = [Some(8.0), Some(4.0), Some(2.0), Some(1.0)];
/// assert_eq!(successive_ratios(&avgs), vec![2.0, 2.0, 2.0]);
/// assert_eq!(rd_for_interval(&avgs), Some(2.0));
///
/// // Class 1 idle this interval: the 0→2 ratio spans two class steps and
/// // is geometrically normalized, (16/4)^(1/2) = 2.
/// assert_eq!(successive_ratios(&[Some(16.0), None, Some(4.0)]), vec![2.0]);
/// ```
pub fn successive_ratios(averages: &[Option<f64>]) -> Vec<f64> {
    let active: Vec<(usize, f64)> = averages
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.map(|v| (i, v)))
        .collect();
    let mut out = Vec::new();
    for pair in active.windows(2) {
        let (i, di) = pair[0];
        let (j, dj) = pair[1];
        if dj <= 0.0 {
            continue;
        }
        let steps = (j - i) as f64;
        out.push((di / dj).powf(1.0 / steps));
    }
    out
}

/// The interval's R_D: the mean of [`successive_ratios`], or `None` when no
/// ratio is defined (fewer than two active classes).
pub fn rd_for_interval(averages: &[Option<f64>]) -> Option<f64> {
    let ratios = successive_ratios(averages);
    if ratios.is_empty() {
        None
    } else {
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

/// Collects R_D values across many intervals (or user experiments) for
/// percentile reporting.
#[derive(Debug, Clone, Default)]
pub struct RdCollector {
    values: Vec<f64>,
}

impl RdCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one interval's average-delay vector; inactive intervals are
    /// ignored.
    pub fn push_interval(&mut self, averages: &[Option<f64>]) {
        if let Some(rd) = rd_for_interval(averages) {
            self.values.push(rd);
        }
    }

    /// Feeds a precomputed R_D value.
    pub fn push_value(&mut self, rd: f64) {
        self.values.push(rd);
    }

    /// All collected values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of defined intervals collected.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Consumes the collector into a [`crate::Percentiles`] helper.
    pub fn into_percentiles(self) -> crate::Percentiles {
        crate::Percentiles::new(self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_active_gives_per_pair_ratios() {
        // Delays 8,4,2,1 → ratios 2,2,2 → R_D = 2.
        let avgs = vec![Some(8.0), Some(4.0), Some(2.0), Some(1.0)];
        assert_eq!(successive_ratios(&avgs), vec![2.0, 2.0, 2.0]);
        assert_eq!(rd_for_interval(&avgs), Some(2.0));
    }

    #[test]
    fn gap_is_geometrically_normalized() {
        // Class 1 inactive: ratio between classes 0 and 2 spans 2 steps.
        // d0/d2 = 16/4 = 4 → per-step ratio 2.
        let avgs = vec![Some(16.0), None, Some(4.0)];
        let r = successive_ratios(&avgs);
        assert_eq!(r.len(), 1);
        assert!((r[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_active_class_is_undefined() {
        assert_eq!(rd_for_interval(&[None, Some(3.0), None]), None);
        assert_eq!(rd_for_interval(&[None, None]), None);
    }

    #[test]
    fn zero_higher_class_delay_is_skipped() {
        let avgs = vec![Some(5.0), Some(0.0), Some(2.0)];
        // 5/0 skipped; 0/2 contributes 0.
        assert_eq!(successive_ratios(&avgs), vec![0.0]);
    }

    #[test]
    fn mixed_ratios_average() {
        let avgs = vec![Some(6.0), Some(3.0), Some(1.0)];
        // Ratios 2 and 3 → R_D = 2.5.
        assert_eq!(rd_for_interval(&avgs), Some(2.5));
    }

    #[test]
    fn collector_skips_undefined_intervals() {
        let mut c = RdCollector::new();
        c.push_interval(&[Some(4.0), Some(2.0)]);
        c.push_interval(&[None, Some(2.0)]);
        c.push_interval(&[Some(9.0), Some(3.0)]);
        assert_eq!(c.count(), 2);
        assert_eq!(c.values(), &[2.0, 3.0]);
        let p = c.into_percentiles();
        assert_eq!(p.quantile(0.5), Some(2.5));
    }
}
