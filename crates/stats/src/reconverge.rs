//! Reconvergence metric for dynamic scenarios.
//!
//! When a perturbation (a live SDP swap, a link flap) hits a running
//! scheduler, the proportional model's ratios d̄_i/d̄_{i+1} drift away
//! from their targets and then settle back as the backlog built under the
//! old regime drains. [`reconvergence_times`] quantifies *how fast*: it
//! windows the post-perturbation departures, computes the achieved
//! successive-class delay ratios per window, and reports how long each
//! ratio took to re-enter (and stay inside) a relative tolerance band
//! around its target.

/// Tuning for [`reconvergence_times`].
#[derive(Debug, Clone)]
pub struct ReconvergenceConfig {
    /// Width of one monitoring window, in ticks.
    pub window_ticks: u64,
    /// Relative tolerance: a window's ratio `r` matches its target `t`
    /// when `|r/t − 1| ≤ epsilon`.
    pub epsilon: f64,
    /// Number of consecutive in-band windows required before the ratio
    /// counts as settled (guards against transient crossings).
    pub settle_windows: usize,
}

impl ReconvergenceConfig {
    /// A forgiving default: 50 ms windows, ±25 % band, 3 windows to
    /// settle — wide enough for Pareto cross-traffic noise at ρ ≈ 0.9.
    pub fn default_for_ticks_per_sec(ticks_per_sec: u64) -> Self {
        ReconvergenceConfig {
            window_ticks: ticks_per_sec / 20,
            epsilon: 0.25,
            settle_windows: 3,
        }
    }
}

/// Ticks each successive-class delay ratio `d̄_i/d̄_{i+1}` needed after
/// `perturb_at` to settle inside the `targets[i]` tolerance band.
///
/// `samples` are departure observations `(depart_tick, class, delay)` in
/// any order; only departures at or after `perturb_at` participate.
/// `targets` holds the post-perturbation target ratios, one per successive
/// class pair (`num_classes − 1` entries, e.g. from
/// `Sdp::target_ratio`). Returns one entry per pair: `Some(ticks)` —
/// measured from `perturb_at` to the *start* of the first window of the
/// settled run — or `None` if the ratio never settled within the sampled
/// horizon (including when a class went silent).
///
/// # Panics
/// Panics if `targets.len() != num_classes - 1`, if `num_classes < 2`, or
/// if `window_ticks` is zero.
pub fn reconvergence_times(
    samples: &[(u64, usize, f64)],
    num_classes: usize,
    perturb_at: u64,
    targets: &[f64],
    cfg: &ReconvergenceConfig,
) -> Vec<Option<u64>> {
    assert!(num_classes >= 2, "need at least two classes");
    assert_eq!(
        targets.len(),
        num_classes - 1,
        "one target per successive class pair"
    );
    assert!(cfg.window_ticks > 0, "window_ticks must be positive");
    let horizon = samples
        .iter()
        .filter(|&&(at, _, _)| at >= perturb_at)
        .map(|&(at, _, _)| at)
        .max();
    let Some(horizon) = horizon else {
        return vec![None; num_classes - 1];
    };
    let n_windows = ((horizon - perturb_at) / cfg.window_ticks + 1) as usize;
    // Per-window per-class (delay sum, count).
    let mut acc = vec![vec![(0.0f64, 0u64); num_classes]; n_windows];
    for &(at, class, delay) in samples {
        if at < perturb_at || class >= num_classes {
            continue;
        }
        let w = ((at - perturb_at) / cfg.window_ticks) as usize;
        acc[w][class].0 += delay;
        acc[w][class].1 += 1;
    }
    // Achieved ratio per window per pair; NaN marks windows where either
    // class was silent (they break a settling run).
    let ratio = |w: &[(f64, u64)], i: usize| -> f64 {
        let (hi, lo) = (&w[i], &w[i + 1]);
        if hi.1 == 0 || lo.1 == 0 || lo.0 <= 0.0 {
            f64::NAN
        } else {
            (hi.0 / hi.1 as f64) / (lo.0 / lo.1 as f64)
        }
    };
    (0..num_classes - 1)
        .map(|i| {
            let mut run_start: Option<usize> = None;
            let mut run_len = 0usize;
            for (w, acc_w) in acc.iter().enumerate() {
                let r = ratio(acc_w, i);
                let in_band = r.is_finite() && (r / targets[i] - 1.0).abs() <= cfg.epsilon;
                if in_band {
                    if run_start.is_none() {
                        run_start = Some(w);
                    }
                    run_len += 1;
                    if run_len >= cfg.settle_windows {
                        return Some(run_start.unwrap() as u64 * cfg.window_ticks);
                    }
                } else {
                    run_start = None;
                    run_len = 0;
                }
            }
            None
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ReconvergenceConfig {
        ReconvergenceConfig {
            window_ticks: 100,
            epsilon: 0.1,
            settle_windows: 2,
        }
    }

    /// One sample per class per window with the given per-window ratios
    /// against a fixed class-1 delay of 10.
    fn samples_from_ratios(ratios: &[f64]) -> Vec<(u64, usize, f64)> {
        let mut v = Vec::new();
        for (w, &r) in ratios.iter().enumerate() {
            let at = w as u64 * 100 + 50;
            v.push((at, 0, 10.0 * r));
            v.push((at, 1, 10.0));
        }
        v
    }

    #[test]
    fn immediately_in_band_settles_at_zero() {
        let s = samples_from_ratios(&[2.0, 2.0, 2.0]);
        let t = reconvergence_times(&s, 2, 0, &[2.0], &cfg());
        assert_eq!(t, vec![Some(0)]);
    }

    #[test]
    fn settling_time_is_the_start_of_the_stable_run() {
        // Windows 0–2 out of band, 3+ in band → settle at window 3.
        let s = samples_from_ratios(&[4.0, 3.5, 3.0, 2.05, 1.98, 2.0]);
        let t = reconvergence_times(&s, 2, 0, &[2.0], &cfg());
        assert_eq!(t, vec![Some(300)]);
    }

    #[test]
    fn transient_crossing_does_not_count() {
        // One in-band window between excursions must not settle
        // (settle_windows = 2).
        let s = samples_from_ratios(&[4.0, 2.0, 4.0, 4.0, 4.0, 4.0]);
        let t = reconvergence_times(&s, 2, 0, &[2.0], &cfg());
        assert_eq!(t, vec![None]);
    }

    #[test]
    fn silent_class_breaks_the_run() {
        let mut s = samples_from_ratios(&[2.0, 2.0, 2.0, 2.0]);
        // Remove class 1 from windows 0 and 1: ratios undefined there.
        s.retain(|&(at, c, _)| !(c == 1 && at < 200));
        let t = reconvergence_times(&s, 2, 0, &[2.0], &cfg());
        assert_eq!(t, vec![Some(200)]);
    }

    #[test]
    fn samples_before_the_perturbation_are_ignored() {
        let mut s = samples_from_ratios(&[2.0, 2.0, 2.0]);
        // A wildly off-target pre-perturbation sample changes nothing.
        s.push((40, 0, 1e9));
        s.push((40, 1, 1.0));
        let t = reconvergence_times(&s, 2, 50, &[2.0], &cfg());
        // Window indices rebase at perturb_at = 50.
        assert!(t[0].is_some());
    }

    #[test]
    fn no_samples_after_perturbation_is_none() {
        let s = samples_from_ratios(&[2.0]);
        let t = reconvergence_times(&s, 2, 1_000_000, &[2.0], &cfg());
        assert_eq!(t, vec![None]);
    }

    #[test]
    fn empty_series_is_all_none() {
        // No samples at all: the horizon is undefined and every pair
        // reports "never settled" rather than panicking or windowing.
        let t = reconvergence_times(&[], 4, 0, &[2.0, 2.0, 2.0], &cfg());
        assert_eq!(t, vec![None, None, None]);
    }

    #[test]
    fn never_settling_series_is_none() {
        // Constantly off-target (ratio 4.0 against target 2.0, ε = 0.1):
        // no window ever enters the band, so the run never starts.
        let s = samples_from_ratios(&[4.0; 12]);
        let t = reconvergence_times(&s, 2, 0, &[2.0], &cfg());
        assert_eq!(t, vec![None]);
    }

    #[test]
    fn settle_run_may_end_at_the_last_sampled_window() {
        // The in-band run reaches settle_windows exactly at the final
        // window: the settling time is still reported (measured from the
        // run's start), even though no later window confirms it.
        let s = samples_from_ratios(&[4.0, 4.0, 2.0, 2.0]);
        let t = reconvergence_times(&s, 2, 0, &[2.0], &cfg());
        assert_eq!(t, vec![Some(200)]);

        // One window shorter and the tail run (length 1 < settle_windows
        // = 2) is truncated by the horizon: not settled.
        let s = samples_from_ratios(&[4.0, 4.0, 4.0, 2.0]);
        let t = reconvergence_times(&s, 2, 0, &[2.0], &cfg());
        assert_eq!(t, vec![None]);
    }

    #[test]
    fn multi_class_ratios_settle_independently() {
        // Class 0/1 in band from the start; class 1/2 never.
        let mut v = Vec::new();
        for w in 0..4u64 {
            let at = w * 100 + 10;
            v.push((at, 0, 40.0));
            v.push((at, 1, 20.0));
            v.push((at, 2, 1.0));
        }
        let t = reconvergence_times(&v, 3, 0, &[2.0, 2.0], &cfg());
        assert_eq!(t[0], Some(0));
        assert_eq!(t[1], None);
    }
}
