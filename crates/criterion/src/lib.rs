//! # criterion (offline stand-in)
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the Criterion API the workspace's benches use —
//! [`Criterion`], benchmark groups, [`Throughput`], [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`] — as a
//! simple wall-clock harness. Each bench runs one warm-up iteration and
//! `sample_size` timed iterations, then prints the mean time per iteration
//! (plus derived throughput when one was declared).
//!
//! No statistics, outlier rejection, or HTML reports: for tracked numbers
//! use the `perf_baseline` binary, which writes `BENCH_propdiff.json`.
#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs, enabling
    /// elements/sec (or bytes/sec) reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Names a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter's display form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Work performed by one bench iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. packets, events) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times closures; handed to every bench function.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    mean: Option<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            mean: None,
        }
    }

    /// Runs `f` once to warm up, then `sample_size` timed times, recording
    /// the mean duration per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.mean = Some(start.elapsed() / self.sample_size as u32);
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let Some(mean) = b.mean else {
        println!("{id:<48} (no measurement: bench did not call iter)");
        return;
    };
    let secs = mean.as_secs_f64();
    match throughput {
        Some(Throughput::Elements(n)) if secs > 0.0 => {
            println!(
                "{id:<48} {:>12.3?} /iter  {:>14.0} elem/s",
                mean,
                n as f64 / secs
            );
        }
        Some(Throughput::Bytes(n)) if secs > 0.0 => {
            println!(
                "{id:<48} {:>12.3?} /iter  {:>14.0} B/s",
                mean,
                n as f64 / secs
            );
        }
        _ => println!("{id:<48} {:>12.3?} /iter", mean),
    }
}

/// Declares a group of benchmark functions, with optional configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_every_shape() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("WTP").0, "WTP");
    }
}
