//! VoIP-style delay differentiation — the workload the paper's intro
//! motivates: delay-sensitive traffic (IP telephony) sharing a congested
//! link with bulk data, without reservations or admission control.
//!
//! Three classes: bulk (class 1), interactive web (class 2), voice
//! (class 3), with voice paying for an 4:2:1 delay spacing. We verify the
//! spacing both in the long-run averages and over *short* monitoring
//! intervals — a voice call cares about the next 100 ms, not the daily
//! average (§2's short-timescale argument).
//!
//! Run with: `cargo run --release --example voip_differentiation`

use propdiff::qsim::ShortTimescale;
use propdiff::sched::{SchedulerKind, Sdp};
use propdiff::stats::Table;
use propdiff::PddSystem;

fn main() {
    // Bulk is 60% of the bytes, web 30%, voice 10%.
    let system = PddSystem::builder()
        .classes(3)
        .sdp(Sdp::new(&[1.0, 2.0, 4.0]).expect("valid SDPs"))
        .class_fractions(vec![0.6, 0.3, 0.1])
        .scheduler(SchedulerKind::Wtp)
        .utilization(0.92)
        .horizon_punits(50_000)
        .seeds(vec![7, 8])
        .build()
        .expect("valid configuration");

    let result = system.run();
    println!("three-class voice/web/bulk link at 92% load (WTP, s = 1,2,4)\n");
    let mut t = Table::new([
        "class",
        "role",
        "mean delay (p-units)",
        "~ms on a T1 (441B pkts)",
    ]);
    let roles = ["bulk", "web", "voice"];
    // 1 p-unit = one mean packet transmission: 441 B / 1.544 Mbps ≈ 2.3 ms.
    let ms_per_punit = 441.0 * 8.0 / 1_544_000.0 * 1000.0;
    for (i, d) in result.mean_delays_punits().iter().enumerate() {
        t.row([
            format!("{}", i + 1),
            roles[i].to_string(),
            format!("{d:.1}"),
            format!("{:.1}", d * ms_per_punit),
        ]);
    }
    println!("{t}");

    // Short-timescale check: does a voice flow see the spacing over
    // 100-p-unit windows, not just in the long run?
    let mut st = ShortTimescale::paper(40_000, vec![7]);
    st.base.sdp = Sdp::new(&[1.0, 2.0, 4.0]).expect("valid SDPs");
    st.base.class_fractions = vec![0.6, 0.3, 0.1];
    st.base.utilization = 0.92;
    st.taus_punits = vec![100, 1000];
    println!("short-timescale R_D percentiles (target 2.0 per class step):\n");
    let mut t = Table::new(["tau (p-units)", "p25", "median", "p75"]);
    for r in st.run(SchedulerKind::Wtp) {
        t.row([
            format!("{}", r.tau_punits),
            format!("{:.2}", r.five_number[1]),
            format!("{:.2}", r.five_number[2]),
            format!("{:.2}", r.five_number[3]),
        ]);
    }
    println!("{t}");
    println!("voice consistently beats web beats bulk, even over short windows.");
}
