//! Scheduler shoot-out: every scheduler in the crate on *identical*
//! traffic, at moderate and heavy load.
//!
//! Reproduces the §2.1 taxonomy experimentally: FCFS gives no
//! differentiation, strict priority is untunable, WFQ/SCFQ/DRR give
//! bandwidth (not delay) differentiation, the additive scheduler spaces
//! differences rather than ratios, WTP/BPR approximate the proportional
//! model in heavy load, and the PAD/HPD extensions hold it everywhere.
//!
//! Run with: `cargo run --release --example scheduler_shootout`

use propdiff::sched::SchedulerKind;
use propdiff::stats::Table;
use propdiff::PddSystem;

fn main() {
    for rho in [0.80, 0.95] {
        let system = PddSystem::builder()
            .utilization(rho)
            .horizon_punits(40_000)
            .seeds(vec![1, 2])
            .build()
            .expect("valid configuration");
        let results = system.compare(&SchedulerKind::ALL);

        println!(
            "\nutilization {:.0}% — target successive-class ratio 2.0 (SDPs 1,2,4,8)",
            rho * 100.0
        );
        let mut t = Table::new([
            "scheduler",
            "d1/d2",
            "d2/d3",
            "d3/d4",
            "mean |dev|",
            "mean delays (p-units)",
        ]);
        for r in &results {
            let mut cells = vec![r.kind.name().to_string()];
            cells.extend(r.ratios.iter().map(|x| format!("{x:.2}")));
            cells.push(format!("{:.0}%", r.ratio_deviation() * 100.0));
            cells.push(
                r.mean_delays_punits()
                    .iter()
                    .map(|d| format!("{d:.0}"))
                    .collect::<Vec<_>>()
                    .join("/"),
            );
            t.row(cells);
        }
        println!("{t}");
    }
    println!(
        "\nnote: every scheduler saw byte-for-byte the same arrivals, so the\n\
         conservation law (Eq. 5) redistributes one fixed backlog budget —\n\
         only the *division* between classes differs."
    );
}
