//! Feasibility explorer: which delay spacings can a link actually honor?
//!
//! §3's point: even an ideal proportional scheduler cannot hit arbitrary
//! DDPs — Eq. (7) bounds every class subset by what FCFS would give that
//! subset alone. This example records a trace, derives the Eq. (6) target
//! delays for a range of spacings, and replays class subsets through an
//! FCFS server to test each spacing — the same procedure the paper used to
//! verify Figures 1–2 operate in the feasible region.
//!
//! Run with: `cargo run --release --example feasibility_explorer`

use propdiff::model::{Ddp, ProportionalModel};
use propdiff::qsim::Experiment;
use propdiff::sched::Sdp;
use propdiff::stats::Table;

fn main() {
    println!("Eq. (7) feasibility of Eq. (6) targets; 4 classes, loads 40/30/20/10%\n");
    let mut t = Table::new([
        "util",
        "spacing r",
        "feasible?",
        "worst subset slack",
        "top-class target (p-units)",
    ]);
    for rho in [0.75, 0.85, 0.95] {
        let e = Experiment::paper(rho, Sdp::paper_default(), 40_000, vec![3]);
        let trace = e.trace_for_seed(3);
        let arrivals: Vec<(u64, u8, u32)> = trace
            .entries()
            .iter()
            .map(|en| (en.at.ticks(), en.class, en.size))
            .collect();
        for spacing in [1.5, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let model = ProportionalModel::new(Ddp::geometric(4, spacing).expect("valid"));
            let report = model.check_feasibility(&arrivals, 1.0);
            let worst = report
                .checks
                .iter()
                .map(|c| c.slack())
                .fold(f64::INFINITY, f64::min);
            // Top-class (class 4) target from Eq. (6), for context.
            let span = (arrivals.last().unwrap().0 - arrivals[0].0) as f64;
            let mut counts = [0.0f64; 4];
            for &(_, c, _) in &arrivals {
                counts[c as usize] += 1.0;
            }
            let lambda: Vec<f64> = counts.iter().map(|c| c / span).collect();
            let agg = propdiff::stats::fcfs_mean_wait(&arrivals, None, 1.0);
            let targets = model.predicted_delays(&lambda, agg);
            t.row([
                format!("{:.0}%", rho * 100.0),
                format!("{spacing:.1}"),
                if report.feasible() {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
                format!("{worst:+.3}"),
                format!("{:.2}", targets[3] / 441.0),
            ]);
        }
    }
    println!("{t}");
    println!(
        "reading: moderate spacings are always feasible; very wide spacings\n\
         demand a top-class delay below its FCFS-alone lower bound, which no\n\
         work-conserving scheduler can deliver (Eq. 7 violated)."
    );
}
