//! The network operator's question (§7): *how should I choose the class
//! differentiation parameters?*
//!
//! This example walks the operator's design loop for one link:
//! 1. pick a candidate quality spacing r (DDP ratio between classes);
//! 2. check it is feasible for the link's measured traffic (Eq. 7);
//! 3. look at what each class would actually get (Eq. 6 targets) and what
//!    WTP delivers in simulation;
//! 4. read off the trade: wider spacing buys the top class a shorter
//!    queue, but pushes the bottom class toward starvation and eventually
//!    leaves the feasible region entirely.
//!
//! Run with: `cargo run --release --example operator_tuning`

use propdiff::model::{Ddp, ProportionalModel};
use propdiff::qsim::Experiment;
use propdiff::sched::{SchedulerKind, Sdp};
use propdiff::stats::{fcfs_mean_wait, Table};

fn main() {
    let rho = 0.93;
    println!(
        "operator tuning at {:.0}% load, 4 classes, loads 40/30/20/10%\n",
        rho * 100.0
    );

    // One recorded trace serves both the feasibility check and simulation.
    let base = Experiment::paper(rho, Sdp::paper_default(), 60_000, vec![2]);
    let trace = base.trace_for_seed(2);
    let arrivals: Vec<(u64, u8, u32)> = trace
        .entries()
        .iter()
        .map(|e| (e.at.ticks(), e.class, e.size))
        .collect();
    let agg = fcfs_mean_wait(&arrivals, None, 1.0);
    let span = (arrivals.last().unwrap().0 - arrivals[0].0) as f64;
    let mut counts = [0.0f64; 4];
    for &(_, c, _) in &arrivals {
        counts[c as usize] += 1.0;
    }
    let lambda: Vec<f64> = counts.iter().map(|c| c / span).collect();
    println!(
        "measured: aggregate FCFS delay {:.1} p-units (every class would get this without differentiation)\n",
        agg / 441.0
    );

    let mut t = Table::new([
        "spacing r",
        "feasible?",
        "target top-class delay (p-units)",
        "target bottom-class delay",
        "WTP delivers (top/bottom)",
    ]);
    for spacing in [1.5, 2.0, 3.0, 4.0, 8.0, 16.0] {
        let model = ProportionalModel::new(Ddp::geometric(4, spacing).expect("valid"));
        let report = model.check_feasibility(&arrivals, 1.0);
        let targets = model.predicted_delays(&lambda, agg);
        // Simulate WTP with the matching SDPs (inverse DDPs).
        let sim = if report.feasible() {
            let mut e = base.clone();
            e.sdp = Sdp::geometric(4, spacing).expect("valid");
            let r = e.run(SchedulerKind::Wtp);
            format!(
                "{:.1} / {:.1}",
                r.mean_delays[3] / 441.0,
                r.mean_delays[0] / 441.0
            )
        } else {
            "- (infeasible)".to_string()
        };
        t.row([
            format!("{spacing:.1}"),
            if report.feasible() {
                "yes".into()
            } else {
                "NO".to_string()
            },
            format!("{:.1}", targets[3] / 441.0),
            format!("{:.1}", targets[0] / 441.0),
            sim,
        ]);
    }
    println!("{t}");
    println!(
        "reading: spacing is a zero-sum knob constrained by Eq. (7) — the\n\
         top class's target cannot drop below what FCFS would give it alone,\n\
         so very wide spacings are simply not deliverable by any\n\
         work-conserving scheduler on this traffic."
    );
}
