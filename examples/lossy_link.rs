//! Coupled delay + loss differentiation on a lossy link (§7 extension).
//!
//! The paper's evaluation assumes lossless ECN-regulated operation and
//! defers the coupled problem. This example runs an *overloaded* link with
//! a finite 6 kB shared buffer: WTP spaces the queueing delays while the
//! Proportional Loss Rate (PLR) push-out dropper spaces the loss
//! fractions — versus plain tail-drop, which loses packets from whichever
//! class happens to arrive at a full buffer.
//!
//! Run with: `cargo run --release --example lossy_link`

use propdiff::qsim::{LossMode, Session};
use propdiff::sched::{PlrDropper, SchedulerKind, Sdp};
use propdiff::simcore::Time;
use propdiff::stats::Table;
use propdiff::traffic::{ClassSource, IatDist, SizeDist, Trace};

fn main() {
    // Two classes, each offering ~0.65 of the link: total load 1.3.
    let horizon = Time::from_ticks(20_000_000);
    let mut sources = vec![
        ClassSource::new(
            0,
            IatDist::paper_pareto(154.0).expect("valid"),
            SizeDist::fixed(100),
        ),
        ClassSource::new(
            1,
            IatDist::paper_pareto(154.0).expect("valid"),
            SizeDist::fixed(100),
        ),
    ];
    let trace = Trace::generate_per_source(&mut sources, horizon, 42);
    println!(
        "overloaded link: offered load {:.2}, 6 kB shared buffer, WTP s = 1,2\n",
        trace.rate_bytes_per_tick()
    );

    let sdp = Sdp::new(&[1.0, 2.0]).expect("valid");
    let mut t = Table::new([
        "dropper",
        "loss c1",
        "loss c2",
        "loss ratio (target 2)",
        "delay c1 (p-units of 100B)",
        "delay c2",
        "delay ratio (target 2)",
    ]);
    for (label, mode) in [
        ("tail-drop", LossMode::TailDrop),
        (
            "PLR sigma=2:1",
            LossMode::Plr(PlrDropper::new(&[2.0, 1.0]).expect("valid")),
        ),
    ] {
        let mut s = SchedulerKind::Wtp.build(&sdp, 1.0);
        let r = Session::trace(&trace, 1.0)
            .lossy(6_000, mode)
            .run(s.as_mut());
        t.row([
            label.to_string(),
            format!("{:.1}%", r.loss_fraction(0) * 100.0),
            format!("{:.1}%", r.loss_fraction(1) * 100.0),
            format!("{:.2}", r.loss_ratio(0, 1).unwrap_or(f64::NAN)),
            format!("{:.1}", r.delays[0].mean() / 100.0),
            format!("{:.1}", r.delays[1].mean() / 100.0),
            format!("{:.2}", r.delays[0].mean() / r.delays[1].mean()),
        ]);
    }
    println!("{t}");
    println!(
        "PLR pins the loss-fraction ratio to sigma1/sigma2 while WTP keeps the\n\
         delay ratio at the SDP target — proportional differentiation on both\n\
         axes, the direction the paper's future-work section points to."
    );
}
