//! Validating the workload: is the generated traffic actually bursty
//! "over a wide range of timescales" as the paper requires?
//!
//! Compares the paper's Pareto(α=1.9) traffic against Poisson traffic of
//! the same rate using the Index of Dispersion for Counts (IDC) and a
//! variance-time Hurst estimate. Poisson is flat at IDC ≈ 1 (no burstiness
//! beyond the packet scale); the Pareto workload's IDC grows with the
//! observation window — exactly the property that defeats static capacity
//! provisioning (§2.1) and motivates dynamic schedulers.
//!
//! Run with: `cargo run --release --example traffic_validation`

use propdiff::simcore::Time;
use propdiff::stats::{hurst_estimate, idc_curve, variance_time, Table};
use propdiff::traffic::{ClassSource, IatDist, SizeDist, Trace};

fn arrivals(iat: IatDist) -> Vec<u64> {
    let mut sources = vec![ClassSource::new(0, iat, SizeDist::paper())];
    Trace::generate_per_source(&mut sources, Time::from_ticks(60_000_000), 7)
        .entries()
        .iter()
        .map(|e| e.at.ticks())
        .collect()
}

fn main() {
    let pareto = arrivals(IatDist::paper_pareto(464.0).expect("valid"));
    let poisson = arrivals(IatDist::exponential(464.0).expect("valid"));

    println!("IDC(m) = Var(N_m)/E(N_m) over window m (ticks); ~1 = Poisson-smooth\n");
    let mut t = Table::new(["window (ticks)", "Poisson IDC", "Pareto(1.9) IDC"]);
    let pareto_curve = idc_curve(&pareto, 5_000, 9);
    let poisson_curve = idc_curve(&poisson, 5_000, 9);
    for (p, q) in poisson_curve.iter().zip(&pareto_curve) {
        t.row([
            format!("{}", p.0),
            format!("{:.2}", p.1),
            format!("{:.2}", q.1),
        ]);
    }
    println!("{t}");

    let h_poisson = hurst_estimate(&variance_time(&poisson, 5_000, 9));
    let h_pareto = hurst_estimate(&variance_time(&pareto, 5_000, 9));
    println!(
        "variance-time Hurst estimate: Poisson H = {:.2}, Pareto H = {:.2}",
        h_poisson.unwrap_or(f64::NAN),
        h_pareto.unwrap_or(f64::NAN)
    );
    println!(
        "\nthe Pareto workload stays bursty as the window grows (rising IDC,\n\
         higher H) — the regime where the paper argues only dynamic\n\
         forwarding-level differentiation stays consistent."
    );
}
