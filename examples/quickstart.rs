//! Quickstart: a proportionally differentiated link in ten lines.
//!
//! Builds a 4-class WTP link with a 2× quality spacing between successive
//! classes, loads it to 95 %, and prints the long-run class delays and
//! ratios — the core promise of the proportional differentiation model:
//! the *ratios* stay pinned no matter what the absolute delays do.
//!
//! Run with: `cargo run --release --example quickstart`

use propdiff::sched::SchedulerKind;
use propdiff::stats::Table;
use propdiff::PddSystem;

fn main() {
    let system = PddSystem::builder()
        .classes(4)
        .spacing_ratio(2.0) // class i is 2x the delay of class i+1
        .scheduler(SchedulerKind::Wtp)
        .utilization(0.95)
        .horizon_punits(50_000)
        .seeds(vec![1, 2, 3])
        .build()
        .expect("valid configuration");

    let result = system.run();

    println!("WTP at 95% load, SDPs 1,2,4,8 (target ratio between classes: 2.0)\n");
    let mut t = Table::new(["class", "mean delay (p-units)", "ratio to next class"]);
    let delays = result.mean_delays_punits();
    for (i, d) in delays.iter().enumerate() {
        t.row([
            format!("{}", i + 1),
            format!("{d:.1}"),
            result
                .ratios
                .get(i)
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{t}");
    println!(
        "mean deviation from the proportional model: {:.1}%",
        result.ratio_deviation() * 100.0
    );
}
