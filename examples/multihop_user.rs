//! The user's perspective (§6): does paying for a higher class actually
//! deliver lower *end-to-end* delays across a multi-hop path?
//!
//! Runs the paper's Figure-6 topology — a chain of congested 25 Mbps links
//! with WTP at every hop and Pareto cross-traffic entering at each node —
//! and launches user experiments (one flow per class, simultaneously).
//! Prints the per-class end-to-end delay medians, the R_D figure of merit
//! (ideal 2.0), and the count of inconsistent experiments.
//!
//! Run with: `cargo run --release --example multihop_user`

use propdiff::netsim::{analyze, packet_time_tolerance, Session, StudyBConfig};
use propdiff::stats::Table;

fn main() {
    let mut cfg = StudyBConfig::paper(
        4,     // hops
        0.95,  // utilization
        20,    // packets per user flow
        200.0, // flow rate, kbps
    );
    cfg.experiments = 40;
    cfg.warmup_secs = 20.0;
    cfg.seed = 2026;

    println!(
        "Figure-6 topology: K={} hops at {:.0}% load, {} user experiments, \
         flows of {} x {}B packets at {} kbps\n",
        cfg.k_hops,
        cfg.utilization * 100.0,
        cfg.experiments,
        cfg.flow_len,
        cfg.packet_bytes,
        cfg.flow_rate_kbps
    );

    let (records, _) = Session::study_b(&cfg).run();
    let result = analyze(&records, cfg.num_classes(), packet_time_tolerance(&cfg));

    let mut t = Table::new(["class", "median end-to-end queueing delay (ms)"]);
    for (c, med) in result.class_median_ticks.iter().enumerate() {
        t.row([format!("{}", c + 1), format!("{:.2}", med / 1e6)]);
    }
    println!("{t}");
    println!("R_D (ideal 2.00): {:.2}", result.rd);
    println!(
        "inconsistent differentiation: {} of {} user experiments",
        result.inconsistent_experiments, result.experiments
    );
    println!(
        "\nverdict: local, class-based WTP scheduling translated into consistent\n\
         per-flow end-to-end differentiation — what a paying user expects."
    );
}
